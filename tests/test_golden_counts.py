"""Golden-count regression suite for the distance-call ledger.

The paper's efficiency metric is the number of distance-function calls
(Section 6: the distance function accounts for >= 99% of runtime).  Four
layers of machinery sit on top of that counter — vectorized kernels,
anytime budgets, the process-pool scan/replay engine, and the admissible
lower-bound pruning ledger — and every one of them promises to preserve
the *logical* call counts.  This suite pins the exact
:class:`~repro.timeseries.distance.DistanceCounter` ledgers
(``calls``/``true_calls``/``pruned``) and discord results for all four
engines on two seeded bundled datasets against the checked-in
``tests/golden/counts.json``, so a future perf layer cannot silently
change logical work.

Each golden entry is keyed by ``dataset/engine/prune`` only: the serial
run and the ``n_workers=2`` run must BOTH reproduce the same entry,
which asserts the parallel bit-identity guarantee directly rather than
pinning separate parallel numbers.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/test_golden_counts.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets import synthetic_ecg
from repro.datasets.synthetic import sine_with_anomaly
from repro.discord.brute_force import brute_force_discords
from repro.discord.haar import haar_discords
from repro.discord.hotsax import hotsax_discords
from repro.timeseries.distance import DistanceCounter

GOLDEN_PATH = Path(__file__).parent / "golden" / "counts.json"
GOLDEN_FORMAT = "repro-golden-counts/1"

# Two seeded bundled datasets, small enough that the full matrix stays
# inside the tier-1 time budget but large enough that every engine does
# non-trivial pruning and multi-chunk parallel work.
DATASETS = {
    "sine": dict(kind="sine", length=1200, period=100, seed=7),
    "ecg": dict(kind="ecg", num_beats=8, anomaly_beats=(5,), seed=3),
}

ENGINES = ("rra", "hotsax", "haar", "brute_force")
NUM_DISCORDS = 2


def _load_dataset(name: str):
    spec = DATASETS[name]
    if spec["kind"] == "sine":
        return sine_with_anomaly(
            length=spec["length"], period=spec["period"], seed=spec["seed"]
        )
    return synthetic_ecg(
        num_beats=spec["num_beats"],
        anomaly_beats=spec["anomaly_beats"],
        seed=spec["seed"],
    )


def _rra_intervals(dataset):
    """Grammar-rule candidate intervals for the RRA engine (deterministic)."""
    detector = GrammarAnomalyDetector(
        window=dataset.window,
        paa_size=dataset.paa_size,
        alphabet_size=dataset.alphabet_size,
    )
    return detector.fit(dataset.series).candidates


def run_engine(
    name: str, dataset, intervals, *, n_workers: int, prune: bool,
    backend: str = "kernel", cache=None,
):
    """Run one engine; return its ledger + discord tuples as a golden entry.

    ``lb_calls`` is deliberately excluded: it counts *physical*
    lower-bound evaluations, which parallel workers perform
    speculatively while over-scanning.  The logical triple
    (``calls``/``true_calls``/``pruned``) is derived from the serial
    replay order and is the invariant worth pinning.
    """
    counter = DistanceCounter()
    series = dataset.series
    if name == "rra":
        result = find_discords(
            series,
            intervals,
            num_discords=NUM_DISCORDS,
            counter=counter,
            n_workers=n_workers,
            prune=prune,
            backend=backend,
            cache=cache,
        )
    elif name == "hotsax":
        result = hotsax_discords(
            series,
            dataset.window,
            num_discords=NUM_DISCORDS,
            paa_size=dataset.paa_size,
            alphabet_size=dataset.alphabet_size,
            counter=counter,
            n_workers=n_workers,
            prune=prune,
            backend=backend,
            cache=cache,
        )
    elif name == "haar":
        result = haar_discords(
            series,
            dataset.window,
            num_discords=NUM_DISCORDS,
            counter=counter,
            n_workers=n_workers,
            prune=prune,
            backend=backend,
            cache=cache,
        )
    elif name == "brute_force":
        result = brute_force_discords(
            series,
            dataset.window,
            num_discords=NUM_DISCORDS,
            counter=counter,
            n_workers=n_workers,
            prune=prune,
            backend=backend,
            cache=cache,
        )
    else:  # pragma: no cover - config error
        raise ValueError(name)
    ledger = counter.ledger()
    assert ledger["calls"] == ledger["true_calls"] + ledger["pruned"]
    return {
        "calls": ledger["calls"],
        "true_calls": ledger["true_calls"],
        "pruned": ledger["pruned"],
        "discords": [
            [d.start, d.end, float(np.round(d.score, 10))] for d in result.discords
        ],
    }


def _entry_key(dataset: str, engine: str, prune: bool) -> str:
    return f"{dataset}/{engine}/prune={'on' if prune else 'off'}"


def _golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        data = json.load(fh)
    assert data["format"] == GOLDEN_FORMAT
    return data


CASES = [
    (ds, engine, prune)
    for ds in DATASETS
    for engine in ENGINES
    for prune in (False, True)
]


@pytest.fixture(scope="module")
def golden():
    return _golden()


@pytest.fixture(scope="module")
def datasets():
    return {name: _load_dataset(name) for name in DATASETS}


@pytest.fixture(scope="module")
def rra_intervals(datasets):
    return {name: _rra_intervals(ds) for name, ds in datasets.items()}


@pytest.mark.parametrize(
    "dataset_name, engine, prune",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_serial_counts_match_golden(
    golden, datasets, rra_intervals, dataset_name, engine, prune
):
    key = _entry_key(dataset_name, engine, prune)
    entry = run_engine(
        engine,
        datasets[dataset_name],
        rra_intervals[dataset_name],
        n_workers=1,
        prune=prune,
    )
    assert entry == golden["entries"][key], key


@pytest.mark.slow
@pytest.mark.parametrize(
    "dataset_name, engine, prune",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_parallel_counts_match_golden(
    golden, datasets, rra_intervals, dataset_name, engine, prune
):
    """n_workers=2 must reproduce the SAME golden entry as the serial run."""
    key = _entry_key(dataset_name, engine, prune)
    entry = run_engine(
        engine,
        datasets[dataset_name],
        rra_intervals[dataset_name],
        n_workers=2,
        prune=prune,
    )
    assert entry == golden["entries"][key], key


@pytest.mark.parametrize(
    "dataset_name, engine, prune",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_batch_serial_counts_match_golden(
    golden, datasets, rra_intervals, dataset_name, engine, prune
):
    """``backend='batch'`` must reproduce the SAME golden entry.

    The tiled GEMM scans replay the serial nearest-so-far trajectory
    over precomputed distances, so the ledger triple and the discords
    are pinned to the kernel backend's numbers — not to separate
    batch-specific goldens.
    """
    key = _entry_key(dataset_name, engine, prune)
    entry = run_engine(
        engine,
        datasets[dataset_name],
        rra_intervals[dataset_name],
        n_workers=1,
        prune=prune,
        backend="batch",
    )
    assert entry == golden["entries"][key], key


@pytest.mark.slow
@pytest.mark.parametrize(
    "dataset_name, engine, prune",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_batch_parallel_counts_match_golden(
    golden, datasets, rra_intervals, dataset_name, engine, prune
):
    """``backend='batch'`` with n_workers=2: still the same entry."""
    key = _entry_key(dataset_name, engine, prune)
    entry = run_engine(
        engine,
        datasets[dataset_name],
        rra_intervals[dataset_name],
        n_workers=2,
        prune=prune,
        backend="batch",
    )
    assert entry == golden["entries"][key], key


@pytest.mark.parametrize(
    "dataset_name, engine, prune",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_cached_counts_match_golden(
    golden, datasets, rra_intervals, dataset_name, engine, prune, tmp_path
):
    """A warm result-cache hit must reproduce the SAME golden entry.

    The first run populates the store; the second is answered from it
    (asserted via the store's hit tally) and must replay the identical
    logical ledger triple and discord list — cached results are pinned
    against the live goldens, never separate cached numbers.
    """
    from repro.cache import ResultCache

    key = _entry_key(dataset_name, engine, prune)
    cache = ResultCache(tmp_path / "store")
    cold = run_engine(
        engine,
        datasets[dataset_name],
        rra_intervals[dataset_name],
        n_workers=1,
        prune=prune,
        cache=cache,
    )
    assert cold == golden["entries"][key], key
    warm = run_engine(
        engine,
        datasets[dataset_name],
        rra_intervals[dataset_name],
        n_workers=1,
        prune=prune,
        cache=cache,
    )
    assert warm == golden["entries"][key], key
    assert cache.hits == 1 and cache.misses == 1, key


def test_golden_file_covers_every_case(golden):
    expected = {_entry_key(*case) for case in CASES}
    assert set(golden["entries"]) == expected


def test_prune_preserves_logical_calls(golden):
    """The pruning ledger promise: prune on/off never shifts ``calls``."""
    for ds in DATASETS:
        for engine in ENGINES:
            off = golden["entries"][_entry_key(ds, engine, False)]
            on = golden["entries"][_entry_key(ds, engine, True)]
            assert on["calls"] == off["calls"], (ds, engine)
            assert on["discords"] == off["discords"], (ds, engine)
            assert off["pruned"] == 0, (ds, engine)


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    entries = {}
    for name in DATASETS:
        dataset = _load_dataset(name)
        intervals = _rra_intervals(dataset)
        for engine in ENGINES:
            for prune in (False, True):
                key = _entry_key(name, engine, prune)
                entries[key] = run_engine(
                    engine, dataset, intervals, n_workers=1, prune=prune
                )
                print(key, entries[key]["calls"], "calls")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": GOLDEN_FORMAT,
        "datasets": {k: {**v, "anomaly_beats": list(v.get("anomaly_beats", []))}
                     if "anomaly_beats" in v else v
                     for k, v in DATASETS.items()},
        "num_discords": NUM_DISCORDS,
        "entries": entries,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)

"""Unit tests for the observability layer (registry, reports, CLI flags).

The end-to-end guarantees (disabled path bit-identical, parallel merge
determinism) live in ``tests/test_golden_counts.py``; this module covers
the registry primitives, snapshot/merge/restore algebra, the JSONL
report format, and the engine/CLI wiring.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets.synthetic import sine_with_anomaly
from repro.discord.hotsax import hotsax_discords
from repro.exceptions import ParameterError
from repro.observability import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Timer,
    deterministic_view,
    ensure_metrics,
    read_run_report,
    write_run_report,
)
from repro.observability.report import REPORT_FORMAT
from repro.resilience import SearchBudget


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ParameterError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_power_of_two_buckets(self):
        h = Histogram()
        for v in (0, 0.5, 1, 2, 3, 4, 7, 8, 1000):
            h.observe(v)
        d = h.to_dict()
        # [0,1) -> 0, [1,2) -> 1, [2,4) -> 2, [4,8) -> 3, [8,16) -> 4, 1000 -> 10
        assert d["buckets"] == {"0": 2, "1": 1, "2": 2, "3": 2, "4": 1, "10": 1}
        assert d["count"] == 9
        assert d["min"] == 0 and d["max"] == 1000
        with pytest.raises(ParameterError):
            h.observe(-1)

    def test_timer_accumulates(self):
        t = Timer()
        with t:
            pass
        t.add(1.25)
        assert t.count == 2
        assert t.seconds >= 1.25


class TestRegistry:
    def test_accessors_are_memoized(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")
        assert m.timer("t") is m.timer("t")

    def test_events_are_sequenced(self):
        m = MetricsRegistry()
        first = m.event("alpha", x=1)
        second = m.event("beta")
        assert first["seq"] == 0 and second["seq"] == 1
        assert first["attrs"] == {"x": 1}
        assert "attrs" not in second
        assert "ts" in first

    def test_span_emits_start_and_end(self):
        m = MetricsRegistry()
        with m.span("phase", rank=2):
            m.event("inside")
        names = [e["name"] for e in m.events]
        assert names == ["phase.start", "inside", "phase.end"]
        assert m.events[0]["attrs"] == {"rank": 2}
        end_attrs = m.events[2]["attrs"]
        assert end_attrs["rank"] == 2 and "seconds" in end_attrs

    def test_snapshot_roundtrip_through_json(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        m.gauge("g").set(1.5)
        m.histogram("h").observe(4)
        with m.timer("t"):
            pass
        snap = json.loads(json.dumps(m.snapshot()))
        clone = MetricsRegistry().merge_snapshot(snap)
        # timers carry wall time; everything else must be identical
        a, b = clone.snapshot(), m.snapshot()
        for section in ("counters", "gauges", "histograms"):
            assert a[section] == b[section]
        assert a["timers"]["t"]["count"] == 1

    def test_merge_snapshot_is_additive_and_commutative(self):
        def build(c, h):
            m = MetricsRegistry()
            m.counter("c").inc(c)
            m.histogram("h").observe(h)
            m.gauge("g").set(c)
            return m

        ab = MetricsRegistry()
        ab.merge_snapshot(build(1, 2).snapshot())
        ab.merge_snapshot(build(10, 200).snapshot())
        ba = MetricsRegistry()
        ba.merge_snapshot(build(10, 200).snapshot())
        ba.merge_snapshot(build(1, 2).snapshot())
        a, b = ab.snapshot(), ba.snapshot()
        assert a["counters"] == b["counters"] == {"c": 11}
        assert a["histograms"] == b["histograms"]
        assert a["histograms"]["h"]["count"] == 2
        # gauges are last-write-wins, the one documented non-commutative bit
        assert a["gauges"] == {"g": 10.0} and b["gauges"] == {"g": 1.0}

    def test_merge_snapshot_none_is_noop(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        before = m.snapshot()
        m.merge_snapshot(None)
        assert m.snapshot() == before

    def test_restore_continues_event_sequence(self):
        old = MetricsRegistry()
        old.counter("c").inc(2)
        old.event("checkpoint.saved")
        fresh = MetricsRegistry()
        fresh.restore(old.snapshot(), old.events)
        nxt = fresh.event("resumed.work")
        assert nxt["seq"] == 1
        assert [e["seq"] for e in fresh.events] == [0, 1]
        assert fresh.snapshot()["counters"] == {"c": 2}


class TestNullMetrics:
    def test_ensure_metrics(self):
        assert ensure_metrics(None) is NULL_METRICS
        m = MetricsRegistry()
        assert ensure_metrics(m) is m

    def test_disabled_sink_is_inert(self):
        n = NullMetrics()
        assert not n.enabled
        n.counter("c").inc(5)
        n.gauge("g").set(1)
        n.histogram("h").observe(2)
        with n.timer("t"):
            pass
        with n.span("phase", rank=1):
            n.event("x", y=2)
        assert n.events == []
        assert n.snapshot() is None
        assert n.merge_snapshot({"counters": {"c": 1}}) is n


class TestRunReport:
    def _registry(self):
        m = MetricsRegistry()
        m.counter("search.candidates_visited").inc(7)
        with m.span("search.rank", rank=0):
            m.event("budget.tripped", reason="max_calls")
        return m

    def test_report_structure(self, tmp_path):
        path = tmp_path / "report.jsonl"
        write_run_report(str(path), self._registry(), meta={"engine": "rra"})
        lines = list(read_run_report(str(path)))
        assert lines[0]["type"] == "meta"
        assert lines[0]["format"] == REPORT_FORMAT
        assert lines[0]["engine"] == "rra"
        assert [l["name"] for l in lines[1:-1]] == [
            "search.rank.start",
            "budget.tripped",
            "search.rank.end",
        ]
        assert all(l["type"] == "event" for l in lines[1:-1])
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["counters"] == {"search.candidates_visited": 7}

    def test_deterministic_view_strips_wall_clock(self, tmp_path):
        path = tmp_path / "report.jsonl"
        write_run_report(str(path), self._registry())
        view = deterministic_view(read_run_report(str(path)))
        for entry in view:
            assert "ts" not in entry
            assert "timers" not in entry
            attrs = entry.get("attrs", {})
            assert "seconds" not in attrs
        # and it must not mutate the caller's parsed lines
        lines = list(read_run_report(str(path)))
        deterministic_view(lines)
        assert any("ts" in l for l in lines)

    def test_reports_deterministic_across_runs(self, tmp_path):
        series = sine_with_anomaly(length=800, period=80, seed=4).series
        views = []
        for run in range(2):
            path = tmp_path / f"report-{run}.jsonl"
            detector = GrammarAnomalyDetector(window=40, paa_size=4, alphabet_size=4)
            detector.fit(series)
            detector.discords(num_discords=2, report_path=str(path))
            views.append(deterministic_view(read_run_report(str(path))))
        assert views[0] == views[1]


class TestEngineWiring:
    def test_enabled_metrics_do_not_change_results(self):
        series = sine_with_anomaly(length=700, period=70, seed=9).series
        plain = hotsax_discords(series, 40, num_discords=2)
        m = MetricsRegistry()
        traced = hotsax_discords(series, 40, num_discords=2, metrics=m)
        assert [(d.start, d.end, d.score) for d in traced.discords] == [
            (d.start, d.end, d.score) for d in plain.discords
        ]
        assert traced.distance_calls == plain.distance_calls
        counters = m.snapshot()["counters"]
        assert counters["search.candidates_visited"] > 0
        ranks = [e for e in m.events if e["name"] == "search.rank_complete"]
        assert len(ranks) == 2
        ledgers = [r["attrs"]["ledger"] for r in ranks]
        assert sum(l["calls"] for l in ledgers) == plain.distance_calls
        for ledger in ledgers:
            assert ledger["calls"] == ledger["true_calls"] + ledger["pruned"]

    def test_budget_trip_becomes_trace_event(self):
        series = sine_with_anomaly(length=700, period=70, seed=9).series
        m = MetricsRegistry()
        result = hotsax_discords(
            series,
            40,
            num_discords=2,
            budget=SearchBudget(max_calls=100),
            metrics=m,
        )
        assert not result.complete
        trips = [e for e in m.events if e["name"] == "budget.tripped"]
        assert len(trips) == 1
        assert trips[0]["attrs"]["reason"] == "max_calls"


class TestCLI:
    def _run(self, tmp_path, *extra):
        series = sine_with_anomaly(length=600, period=60, seed=2).series
        csv = tmp_path / "series.csv"
        np.savetxt(csv, series)
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "find", str(csv), "-w", "40", *extra],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_trace_prints_events_to_stderr(self, tmp_path):
        proc = self._run(tmp_path, "--trace")
        assert proc.returncode == 0, proc.stderr
        assert "search.rank_complete" in proc.stderr
        assert "search.candidates_visited" in proc.stderr

    def test_metrics_out_writes_parsable_report(self, tmp_path):
        out = tmp_path / "run.jsonl"
        proc = self._run(tmp_path, "--metrics-out", str(out))
        assert proc.returncode == 0, proc.stderr
        lines = list(read_run_report(str(out)))
        assert lines[0]["type"] == "meta"
        assert lines[0]["engine"] == "rra"
        assert lines[-1]["type"] == "metrics"

    def test_default_run_has_no_observability_output(self, tmp_path):
        proc = self._run(tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "search.rank_complete" not in proc.stderr
        assert "run report" not in proc.stdout

"""Tests for repro.timeseries.preprocess."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.timeseries.preprocess import (
    clip_outliers,
    detrend,
    downsample,
    fill_missing,
    prepare,
)


class TestFillMissing:
    def test_linear_interpolation(self):
        series = np.array([0.0, np.nan, 2.0])
        np.testing.assert_allclose(fill_missing(series), [0.0, 1.0, 2.0])

    def test_linear_edges_extended(self):
        series = np.array([np.nan, 1.0, np.nan])
        np.testing.assert_allclose(fill_missing(series), [1.0, 1.0, 1.0])

    def test_ffill(self):
        series = np.array([np.nan, 1.0, np.nan, 3.0, np.nan])
        np.testing.assert_allclose(
            fill_missing(series, method="ffill"), [1.0, 1.0, 1.0, 3.0, 3.0]
        )

    def test_zero(self):
        series = np.array([1.0, np.inf, -np.inf, np.nan])
        np.testing.assert_allclose(
            fill_missing(series, method="zero"), [1.0, 0.0, 0.0, 0.0]
        )

    def test_no_missing_returns_copy(self):
        series = np.array([1.0, 2.0])
        out = fill_missing(series)
        np.testing.assert_array_equal(out, series)
        assert out is not series

    def test_all_missing_rejected(self):
        with pytest.raises(ParameterError):
            fill_missing(np.array([np.nan, np.nan]))

    def test_unknown_method(self):
        with pytest.raises(ParameterError):
            fill_missing(np.array([1.0, np.nan]), method="magic")

    @given(st.lists(st.integers(0, 9), min_size=3, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_output_always_finite(self, pattern):
        series = np.array(
            [float("nan") if v < 3 else float(v) for v in pattern]
        )
        if not np.isfinite(series).any():
            return
        for method in ("linear", "ffill", "zero"):
            assert np.isfinite(fill_missing(series, method=method)).all()


class TestDetrend:
    def test_linear_removes_ramp(self):
        series = 3.0 * np.arange(100.0) + 7.0
        out = detrend(series)
        np.testing.assert_allclose(out, 0.0, atol=1e-8)

    def test_mean(self):
        out = detrend(np.array([1.0, 2.0, 3.0]), kind="mean")
        assert out.mean() == pytest.approx(0.0)

    def test_preserves_shape_on_top_of_trend(self):
        t = np.arange(500.0)
        signal = np.sin(2 * np.pi * t / 50)
        out = detrend(signal + 0.01 * t)
        # the fitted line absorbs a little of the sine over the partial
        # last period, so compare with a generous tolerance
        np.testing.assert_allclose(out, signal - signal.mean(), atol=0.2)

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            detrend(np.arange(5.0), kind="cubic")

    def test_empty(self):
        assert detrend(np.array([])).size == 0


class TestDownsample:
    def test_block_means(self):
        series = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_allclose(downsample(series, 2), [2.0, 6.0])

    def test_partial_tail_averaged(self):
        series = np.array([1.0, 3.0, 10.0])
        np.testing.assert_allclose(downsample(series, 2), [2.0, 10.0])

    def test_factor_one_is_copy(self):
        series = np.arange(5.0)
        out = downsample(series, 1)
        np.testing.assert_array_equal(out, series)
        assert out is not series

    def test_invalid_factor(self):
        with pytest.raises(ParameterError):
            downsample(np.arange(5.0), 0)

    def test_mean_preserved(self, rng):
        series = rng.normal(size=1000)
        out = downsample(series, 10)
        assert out.mean() == pytest.approx(series.mean(), abs=1e-9)


class TestClipOutliers:
    def test_glitch_clamped(self, rng):
        series = rng.normal(0.0, 1.0, 1000)
        series[500] = 1e6
        out = clip_outliers(series, z_limit=6.0)
        assert out[500] < 1e6
        assert out[500] == out.max()

    def test_normal_data_untouched(self, rng):
        series = rng.normal(0.0, 1.0, 200)
        np.testing.assert_array_equal(clip_outliers(series, z_limit=10.0), series)

    def test_constant_series(self):
        series = np.full(10, 4.0)
        np.testing.assert_array_equal(clip_outliers(series), series)

    def test_invalid_limit(self):
        with pytest.raises(ParameterError):
            clip_outliers(np.arange(5.0), z_limit=0.0)


class TestPrepare:
    def test_full_pipeline(self, rng):
        t = np.arange(1000.0)
        series = np.sin(2 * np.pi * t / 100) + 0.01 * t
        series[100] = np.nan
        series[200] = 1e9
        out = prepare(series, detrend_kind="linear", downsample_factor=2,
                      clip_z=6.0)
        assert out.size == 500
        assert np.isfinite(out).all()
        # the 1e9 glitch has been tamed to a few robust deviations
        assert np.abs(out).max() < 30.0

    def test_detection_after_prepare(self):
        """End to end: a dirty series still yields the planted anomaly."""
        from repro.core.pipeline import GrammarAnomalyDetector
        from repro.datasets import sine_with_anomaly

        dataset = sine_with_anomaly(
            length=2000, period=100, anomaly_start=1000, anomaly_length=80,
            anomaly_kind="bump", noise=0.03, seed=7,
        )
        detector = GrammarAnomalyDetector(50, 4, 4)
        # sanity: detectable on the clean series
        detector.fit(dataset.series)
        clean_best = detector.discords(num_discords=1).best
        assert dataset.contains_hit(clean_best.start, clean_best.end,
                                    min_overlap=0.3)
        # Now with periodic dropouts repaired by prepare().  Linear
        # interpolation leaves small kinks that are themselves mildly
        # anomalous, so require the planted event among the top-3 rather
        # than demanding rank 1.
        dirty = dataset.series.copy()
        dirty[::97] = np.nan
        repaired = prepare(dirty)
        detector.fit(repaired)
        discords = detector.discords(num_discords=3).discords
        assert any(
            dataset.contains_hit(d.start, d.end, min_overlap=0.3)
            for d in discords
        )

"""Tests for the array-API seam behind the batch backend.

The seam's contract: NumPy resolves with zero new imports, optional
accelerator namespaces are detected lazily, and every failure mode is a
:class:`~repro.exceptions.ParameterError` with an actionable message —
never an ``ImportError`` at import time.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.timeseries.array_api import (
    ARRAY_API_ENV,
    NumpyNamespace,
    available_namespaces,
    resolve_namespace,
)


def test_default_resolution_is_numpy():
    xp = resolve_namespace()
    assert isinstance(xp, NumpyNamespace)
    assert xp.name == "numpy"


def test_explicit_numpy_resolution_is_singleton():
    assert resolve_namespace("numpy") is resolve_namespace("numpy")


def test_numpy_namespace_round_trip():
    xp = resolve_namespace("numpy")
    a = xp.asarray([[1.0, 2.0], [3.0, 4.0]])
    b = xp.asarray([[1.0, 0.0], [0.0, 1.0]])
    out = xp.to_numpy(xp.matmul(a, xp.transpose(b)))
    np.testing.assert_allclose(out, [[1.0, 2.0], [3.0, 4.0]])
    clipped = xp.to_numpy(xp.clip_min(xp.asarray([-1.0, 0.5]), 0.0))
    np.testing.assert_allclose(clipped, [0.0, 0.5])


def test_unknown_namespace_raises_parameter_error():
    with pytest.raises(ParameterError, match="unknown array namespace"):
        resolve_namespace("tensorflow")


@pytest.mark.parametrize("name", ["cupy", "torch"])
def test_missing_extra_names_the_pip_extra(name):
    if importlib.util.find_spec(name) is not None:
        pytest.skip(f"{name} is installed in this environment")
    with pytest.raises(ParameterError, match=f"repro\\[{name}\\]"):
        resolve_namespace(name)


def test_available_namespaces_always_includes_numpy():
    names = available_namespaces()
    assert "numpy" in names
    for name in names:
        # Everything advertised as available must actually resolve.
        assert resolve_namespace(name).name == name


def test_env_var_selects_namespace(monkeypatch):
    monkeypatch.setenv(ARRAY_API_ENV, "numpy")
    assert resolve_namespace().name == "numpy"
    monkeypatch.setenv(ARRAY_API_ENV, "no-such-library")
    with pytest.raises(ParameterError, match="unknown array namespace"):
        resolve_namespace()
    # Empty value falls back to the default rather than erroring.
    monkeypatch.setenv(ARRAY_API_ENV, "")
    assert resolve_namespace().name == "numpy"


def test_tile_kernel_accepts_explicit_namespace():
    from repro.timeseries import kernels

    rng = np.random.default_rng(11)
    queries = rng.normal(size=(5, 16))
    matrix = rng.normal(size=(9, 16))
    via_seam = kernels.all_pairs_sq_euclidean_tile(
        queries, matrix, xp=resolve_namespace("numpy")
    )
    default = kernels.all_pairs_sq_euclidean_tile(queries, matrix)
    np.testing.assert_array_equal(via_seam, default)

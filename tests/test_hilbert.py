"""Tests for repro.trajectory.hilbert — the Hilbert space-filling curve."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.trajectory.hilbert import (
    hilbert_curve_points,
    hilbert_d2xy,
    hilbert_xy2d,
)


class TestFirstOrder:
    def test_paper_figure6_left_panel(self):
        """Order-1 curve visits the 4 quadrants in the canonical order."""
        points = hilbert_curve_points(1)
        np.testing.assert_array_equal(points, [[0, 0], [0, 1], [1, 1], [1, 0]])


class TestRoundTrip:
    @given(st.integers(1, 8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_property_d2xy_xy2d_roundtrip(self, order, data):
        side = 1 << order
        d = data.draw(st.integers(0, side * side - 1))
        x, y = hilbert_d2xy(order, d)
        assert hilbert_xy2d(order, x, y) == d

    @given(st.integers(1, 8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_property_xy2d_d2xy_roundtrip(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(0, side - 1))
        y = data.draw(st.integers(0, side - 1))
        d = hilbert_xy2d(order, x, y)
        assert hilbert_d2xy(order, d) == (x, y)


class TestBijection:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_visits_every_cell_once(self, order):
        points = hilbert_curve_points(order)
        seen = {tuple(p) for p in points}
        side = 1 << order
        assert len(seen) == side * side


class TestLocality:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_consecutive_cells_edge_adjacent(self, order):
        """The defining Hilbert property: consecutive cells share an edge."""
        points = hilbert_curve_points(order)
        diffs = np.abs(np.diff(points, axis=0)).sum(axis=1)
        assert (diffs == 1).all()

    def test_spatial_locality_preserved_on_average(self):
        """Nearby cells have nearby indices much more often than not."""
        order = 5
        side = 1 << order
        rng = np.random.default_rng(0)
        index_gaps = []
        for _ in range(300):
            x = int(rng.integers(0, side - 1))
            y = int(rng.integers(0, side))
            d1 = hilbert_xy2d(order, x, y)
            d2 = hilbert_xy2d(order, x + 1, y)
            index_gaps.append(abs(d1 - d2))
        # median index gap for adjacent cells is tiny relative to 4^order
        assert np.median(index_gaps) <= side


class TestValidation:
    def test_bad_order(self):
        with pytest.raises(ParameterError):
            hilbert_xy2d(0, 0, 0)
        with pytest.raises(ParameterError):
            hilbert_d2xy(31, 0)

    def test_out_of_grid(self):
        with pytest.raises(ParameterError):
            hilbert_xy2d(2, 4, 0)
        with pytest.raises(ParameterError):
            hilbert_xy2d(2, 0, -1)

    def test_out_of_curve(self):
        with pytest.raises(ParameterError):
            hilbert_d2xy(2, 16)
        with pytest.raises(ParameterError):
            hilbert_d2xy(2, -1)

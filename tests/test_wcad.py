"""Tests for repro.baselines.wcad — the compression-based baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.wcad import wcad_anomalies, wcad_scores
from repro.datasets import sine_with_anomaly
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def flat_anomaly():
    # WCAD works on coarse non-overlapping windows; use a structural
    # anomaly that dominates a whole window.
    return sine_with_anomaly(
        length=2000, period=100, anomaly_start=1000, anomaly_length=100,
        anomaly_kind="bump", noise=0.02, seed=5,
    )


class TestWcadScores:
    def test_one_score_per_window(self, flat_anomaly):
        scores = wcad_scores(flat_anomaly.series, 100)
        assert scores.size == flat_anomaly.length // 100

    def test_anomalous_window_scores_high(self, flat_anomaly):
        scores = wcad_scores(flat_anomaly.series, 100)
        anomaly_window = 1000 // 100
        rank = (scores >= scores[anomaly_window]).sum()
        assert rank <= 4  # among the least compressible windows

    def test_invalid_window(self, flat_anomaly):
        with pytest.raises(ParameterError):
            wcad_scores(flat_anomaly.series, 1)

    def test_series_shorter_than_window(self):
        with pytest.raises(ParameterError):
            wcad_scores(np.zeros(10), 100)


class TestWcadAnomalies:
    def test_intervals_aligned_to_windows(self, flat_anomaly):
        anomalies = wcad_anomalies(flat_anomaly.series, 100, num_anomalies=3)
        assert len(anomalies) == 3
        for anomaly in anomalies:
            assert anomaly.start % 100 == 0
            assert anomaly.length == 100
            assert anomaly.source == "wcad"

    def test_ranked_by_score(self, flat_anomaly):
        anomalies = wcad_anomalies(flat_anomaly.series, 100, num_anomalies=3)
        scores = [a.score for a in anomalies]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_count(self, flat_anomaly):
        with pytest.raises(ParameterError):
            wcad_anomalies(flat_anomaly.series, 100, num_anomalies=0)

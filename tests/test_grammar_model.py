"""Tests for repro.grammar.grammar (the data model itself)."""

from __future__ import annotations

import pytest

from repro.exceptions import GrammarError
from repro.grammar.grammar import (
    Grammar,
    GrammarRule,
    RuleOccurrence,
    START_RULE_ID,
    compute_levels,
)
from repro.grammar.sequitur import induce_grammar


def _toy_grammar() -> Grammar:
    """R0 -> R1 x R1 ; R1 -> a b  over input 'a b x a b'."""
    tokens = ["a", "b", "x", "a", "b"]
    rules = {
        0: GrammarRule(rule_id=0, rhs=[1, "x", 1], expansion=list(tokens),
                       occurrences=[RuleOccurrence(0, 4)]),
        1: GrammarRule(rule_id=1, rhs=["a", "b"], expansion=["a", "b"],
                       occurrences=[RuleOccurrence(0, 1), RuleOccurrence(3, 4)]),
    }
    compute_levels(rules)
    return Grammar(tokens=tokens, rules=rules)


class TestRuleOccurrence:
    def test_token_length(self):
        assert RuleOccurrence(2, 5).token_length == 4

    def test_rejects_malformed(self):
        with pytest.raises(GrammarError):
            RuleOccurrence(3, 2)
        with pytest.raises(GrammarError):
            RuleOccurrence(-1, 2)


class TestGrammarRule:
    def test_name(self):
        assert GrammarRule(rule_id=7, rhs=[]).name == "R7"

    def test_usage(self):
        rule = _toy_grammar().rules[1]
        assert rule.usage == 2

    def test_displays(self):
        rule = _toy_grammar().rules[0]
        assert rule.rhs_display() == "R1 x R1"
        assert rule.expansion_display() == "a b x a b"


class TestGrammar:
    def test_verify_ok(self):
        _toy_grammar().verify()

    def test_grammar_size(self):
        assert _toy_grammar().grammar_size() == 5  # 3 + 2

    def test_compression_ratio(self):
        assert _toy_grammar().compression_ratio() == pytest.approx(1.0)

    def test_expand_rule(self):
        grammar = _toy_grammar()
        assert grammar.expand_rule(1) == ["a", "b"]
        with pytest.raises(GrammarError):
            grammar.expand_rule(99)

    def test_iteration_order(self):
        ids = [r.rule_id for r in _toy_grammar()]
        assert ids == sorted(ids)

    def test_rules_by_usage(self):
        grammar = induce_grammar(list("ababcdcdcdcd"))
        usages = [r.usage for r in grammar.rules_by_usage()]
        assert usages == sorted(usages)

    def test_verify_catches_dangling_reference(self):
        grammar = _toy_grammar()
        grammar.rules[0].rhs = [1, "x", 2]
        with pytest.raises(GrammarError):
            grammar.verify()

    def test_verify_catches_unused_rule(self):
        grammar = _toy_grammar()
        grammar.rules[2] = GrammarRule(rule_id=2, rhs=["q"], expansion=["q"])
        with pytest.raises(GrammarError):
            grammar.verify()

    def test_verify_catches_occurrence_mismatch(self):
        grammar = _toy_grammar()
        grammar.rules[1].occurrences.append(RuleOccurrence(1, 2))
        with pytest.raises(GrammarError):
            grammar.verify()

    def test_verify_catches_out_of_range_occurrence(self):
        grammar = _toy_grammar()
        grammar.rules[1].occurrences.append(RuleOccurrence(4, 5))
        with pytest.raises(GrammarError):
            grammar.verify()


class TestComputeLevels:
    def test_toy_levels(self):
        grammar = _toy_grammar()
        assert grammar.rules[1].level == 1
        assert grammar.rules[0].level == 2

    def test_deep_hierarchy(self):
        grammar = induce_grammar(list("abcabc" * 8))
        levels = {r.rule_id: r.level for r in grammar}
        assert levels[START_RULE_ID] == max(levels.values())

    def test_detects_cycles(self):
        rules = {
            0: GrammarRule(rule_id=0, rhs=[1]),
            1: GrammarRule(rule_id=1, rhs=[2]),
            2: GrammarRule(rule_id=2, rhs=[1]),
        }
        with pytest.raises(GrammarError):
            compute_levels(rules)

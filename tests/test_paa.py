"""Tests for repro.timeseries.paa."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ParameterError
from repro.timeseries.paa import paa, paa_batch, paa_segment_bounds

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestPaa:
    def test_divisible(self):
        values = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        np.testing.assert_allclose(paa(values, 3), [1.0, 2.0, 3.0])

    def test_identity_when_w_equals_n(self):
        values = np.array([3.0, 1.0, 4.0, 1.0])
        np.testing.assert_allclose(paa(values, 4), values)

    def test_single_segment_is_mean(self):
        values = np.array([2.0, 4.0, 6.0])
        np.testing.assert_allclose(paa(values, 1), [4.0])

    def test_fractional_case_mass_preserved(self):
        # n=5, w=2: each point weighted so total mass is preserved
        values = np.array([1.0, 1.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(paa(values, 2), [1.0, 1.0])

    def test_fractional_known_example(self):
        # n=3, w=2: segment size 1.5.  First segment = v0 + 0.5*v1;
        # second = 0.5*v1 + v2 (each divided by 1.5).
        values = np.array([0.0, 3.0, 6.0])
        expected = [(0.0 + 1.5) / 1.5, (1.5 + 6.0) / 1.5]
        np.testing.assert_allclose(paa(values, 2), expected)

    def test_w_larger_than_n_rejected(self):
        with pytest.raises(ParameterError):
            paa(np.arange(3.0), 4)

    def test_w_zero_rejected(self):
        with pytest.raises(ParameterError):
            paa(np.arange(3.0), 0)

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            paa(np.zeros((2, 2)), 1)

    @given(
        arrays(np.float64, st.integers(4, 48), elements=finite),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_mean_preserved(self, values, w):
        """The weighted mean of PAA segments equals the input mean."""
        if w > values.size:
            return
        means = paa(values, w)
        assert abs(float(means.mean()) - float(values.mean())) < 1e-8 * max(
            1.0, np.abs(values).max()
        )

    @given(
        arrays(np.float64, st.integers(4, 48), elements=finite),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bounded_by_extremes(self, values, w):
        if w > values.size:
            return
        means = paa(values, w)
        assert means.min() >= values.min() - 1e-9
        assert means.max() <= values.max() + 1e-9

    def test_constant_input(self):
        np.testing.assert_allclose(paa(np.full(7, 2.5), 3), np.full(3, 2.5))


class TestPaaBatch:
    def test_matches_per_row_paa(self, rng):
        matrix = rng.normal(size=(10, 12))
        batch = paa_batch(matrix, 4)
        for i in range(10):
            np.testing.assert_allclose(batch[i], paa(matrix[i], 4), atol=1e-12)

    def test_matches_per_row_paa_fractional(self, rng):
        matrix = rng.normal(size=(10, 13))
        batch = paa_batch(matrix, 5)
        for i in range(10):
            np.testing.assert_allclose(batch[i], paa(matrix[i], 5), atol=1e-9)

    def test_identity(self, rng):
        matrix = rng.normal(size=(3, 6))
        np.testing.assert_allclose(paa_batch(matrix, 6), matrix)

    def test_rejects_1d(self):
        with pytest.raises(ParameterError):
            paa_batch(np.arange(6.0), 2)

    def test_rejects_w_too_large(self):
        with pytest.raises(ParameterError):
            paa_batch(np.zeros((2, 4)), 5)


class TestSegmentBounds:
    def test_divisible(self):
        bounds = paa_segment_bounds(6, 3)
        assert bounds == [(0.0, 2.0), (2.0, 4.0), (4.0, 6.0)]

    def test_fractional(self):
        bounds = paa_segment_bounds(3, 2)
        assert bounds == [(0.0, 1.5), (1.5, 3.0)]

    def test_covers_whole_range(self):
        bounds = paa_segment_bounds(17, 5)
        assert bounds[0][0] == 0.0
        assert abs(bounds[-1][1] - 17.0) < 1e-12
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert abs(hi - lo) < 1e-12

    def test_invalid(self):
        with pytest.raises(ParameterError):
            paa_segment_bounds(4, 0)
        with pytest.raises(ParameterError):
            paa_segment_bounds(0, 2)
        with pytest.raises(ParameterError):
            paa_segment_bounds(3, 4)

"""Tests for repro.discord.search — the shared ordered-search engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord.brute_force import brute_force_discord
from repro.discord.search import iterated_search, ordered_discord_search
from repro.exceptions import DiscordSearchError
from repro.timeseries.distance import DistanceCounter


def _series(length=300, period=30, blip_at=150, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.02, length)
    series[blip_at : blip_at + 20] += 2.0
    return series


def _single_bucket(series, window):
    """Degenerate bucketing: every window in one bucket."""
    k = series.size - window + 1
    return ["x"] * k


def _unique_buckets(series, window):
    """Degenerate bucketing: every window alone."""
    k = series.size - window + 1
    return [str(i) for i in range(k)]


class TestOrderedDiscordSearch:
    @pytest.mark.parametrize("bucket_fn", [_single_bucket, _unique_buckets])
    def test_exact_regardless_of_bucketing(self, bucket_fn):
        """Any bucketing yields the brute-force discord (exactness)."""
        series = _series()
        brute, _ = brute_force_discord(series, 30)
        found, _ = ordered_discord_search(
            series, 30, bucket_fn, source="test"
        )
        assert (found.start, found.end) == (brute.start, brute.end)
        assert found.nn_distance == pytest.approx(brute.nn_distance)

    def test_bad_bucket_count_rejected(self):
        series = _series()
        with pytest.raises(DiscordSearchError):
            ordered_discord_search(
                series, 30, lambda s, w: ["x"], source="test"
            )

    def test_too_short_series(self):
        with pytest.raises(DiscordSearchError):
            ordered_discord_search(
                np.zeros(5), 10, _single_bucket, source="test"
            )

    def test_exclusion(self):
        series = _series()
        first, _ = ordered_discord_search(
            series, 30, _single_bucket, source="test"
        )
        second, _ = ordered_discord_search(
            series, 30, _single_bucket, source="test",
            exclude=((first.start - 29, first.start + 30),),
        )
        assert abs(second.start - first.start) > 29

    def test_counter_shared(self):
        series = _series()
        counter = DistanceCounter()
        ordered_discord_search(series, 30, _single_bucket, source="t",
                               counter=counter)
        first = counter.calls
        ordered_discord_search(series, 30, _single_bucket, source="t",
                               counter=counter)
        assert counter.calls > first

    def test_source_tag_propagates(self):
        series = _series()
        found, _ = ordered_discord_search(
            series, 30, _single_bucket, source="custom"
        )
        assert found.source == "custom"


class TestIteratedSearch:
    def test_ranked_output(self):
        series = _series()
        discords, counter, rank_complete = iterated_search(
            series, 30, _single_bucket, source="t", num_discords=3
        )
        assert [d.rank for d in discords] == list(range(len(discords)))
        assert counter.calls > 0
        assert rank_complete == [True] * len(discords)

    def test_invalid_count(self):
        with pytest.raises(DiscordSearchError):
            iterated_search(_series(), 30, _single_bucket, source="t",
                            num_discords=0)

    def test_stops_when_exhausted(self):
        # a tiny series supports only a couple of non-overlapping discords
        series = _series(length=100, period=20, blip_at=50)
        discords, _, _ = iterated_search(
            series, 25, _single_bucket, source="t", num_discords=10
        )
        assert 1 <= len(discords) < 10

"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import _load_series, build_parser, main
from repro.datasets import sine_with_anomaly
from repro.exceptions import ReproError


@pytest.fixture
def series_file(tmp_path):
    ds = sine_with_anomaly(length=1200, period=80, anomaly_start=600,
                           anomaly_length=80, anomaly_kind="bump", seed=3)
    path = tmp_path / "series.csv"
    np.savetxt(path, ds.series)
    return str(path)


@pytest.fixture
def two_column_file(tmp_path):
    data = np.column_stack([np.arange(100.0), np.sin(np.arange(100.0))])
    path = tmp_path / "two.csv"
    np.savetxt(path, data)
    return str(path)


class TestLoadSeries:
    def test_single_column(self, series_file):
        series = _load_series(series_file, 0)
        assert series.size == 1200

    def test_column_selection(self, two_column_file):
        col1 = _load_series(two_column_file, 1)
        np.testing.assert_allclose(col1, np.sin(np.arange(100.0)), atol=1e-6)

    def test_missing_file(self):
        with pytest.raises(ReproError):
            _load_series("/nonexistent/file.csv", 0)

    def test_bad_column(self, two_column_file):
        with pytest.raises(ReproError):
            _load_series(two_column_file, 5)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in (["demo"], ["table1"], ["find", "x.csv"], ["density", "x.csv"]):
            args = parser.parse_args(cmd)
            assert callable(args.func)

    def test_sax_defaults(self):
        args = build_parser().parse_args(["find", "x.csv"])
        assert (args.window, args.paa, args.alphabet) == (100, 4, 4)


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Anomalies:" in out

    def test_find_runs(self, series_file, capsys):
        code = main(["find", series_file, "-w", "40", "-p", "4", "-a", "4", "-k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rra" in out

    def test_density_outputs_one_value_per_point(self, series_file, capsys):
        assert main(["density", series_file, "-w", "40"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1200

    def test_error_path_returns_1(self, capsys):
        assert main(["find", "/nonexistent.csv"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_table1_single_row(self, capsys):
        assert main(["table1", "--only", "ecg_qtdb_0606"]) == 0
        out = capsys.readouterr().out
        assert "ECG 0606" in out

    def test_motifs_command(self, series_file, capsys):
        assert main(["motifs", series_file, "-w", "40", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "R" in out

    def test_suggest_command(self, series_file, capsys):
        assert main(["suggest", series_file, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "dominant period" in out
        assert "score" in out

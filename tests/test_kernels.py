"""Equivalence tests for the vectorized distance-kernel layer.

Two families of guarantees:

* **Numeric equivalence** — every kernel in ``repro.timeseries.kernels``
  matches its scalar reference to 1e-9 on random inputs (property-style
  sweeps over shapes, offsets, and flat segments).
* **Accounting equivalence** — the ``backend="kernel"`` search paths
  report *bit-identical* ``DistanceCounter.calls`` (and the same
  discords) as ``backend="scalar"`` for RRA, HOTSAX, Haar, and brute
  force on the seed fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rra import find_discord, find_discords, nearest_neighbor_distances
from repro.discord.brute_force import brute_force_discord
from repro.discord.haar import haar_discords
from repro.discord.hotsax import hotsax_discords
from repro.exceptions import ParameterError
from repro.timeseries import kernels
from repro.timeseries.distance import (
    DistanceCounter,
    euclidean,
    euclidean_early_abandon,
    variable_length_distance,
)
from repro.timeseries.windows import sliding_windows
from repro.timeseries.znorm import znorm, znorm_rows


def _random_series(rng, length, *, offset=0.0, flat_span=None):
    series = rng.normal(0.0, 1.0, length) + offset
    if flat_span is not None:
        lo, hi = flat_span
        series[lo:hi] = series[lo]  # exactly constant stretch
    return series


class TestBackendValidation:
    def test_known_backends(self):
        kernels.validate_backend("kernel")
        kernels.validate_backend("scalar")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            kernels.validate_backend("cuda")


class TestWindowStats:
    @pytest.mark.parametrize("window", [2, 5, 31, 100])
    def test_matches_per_window_mean_std(self, rng, window):
        series = _random_series(rng, 300, offset=50.0)
        means, stds = kernels.sliding_window_stats(series, window)
        view = sliding_windows(series, window)
        assert np.allclose(means, view.mean(axis=1), atol=1e-9)
        assert np.allclose(stds, view.std(axis=1), atol=1e-9)

    def test_short_series_empty(self):
        means, stds = kernels.sliding_window_stats(np.zeros(3), 10)
        assert means.size == 0 and stds.size == 0

    @pytest.mark.parametrize("window", [3, 20, 64])
    def test_znorm_windows_match_znorm_rows(self, rng, window):
        series = _random_series(rng, 400, flat_span=(100, 100 + 2 * window))
        batch = kernels.znorm_sliding_windows(series, window)
        reference = znorm_rows(sliding_windows(series, window))
        assert np.allclose(batch, reference, atol=1e-9)


class TestSeriesStats:
    def test_interval_stats_match_numpy(self, rng):
        series = _random_series(rng, 500, offset=100.0)
        stats = kernels.SeriesStats(series)
        for start, end in [(0, 10), (3, 500), (250, 252), (100, 400)]:
            segment = series[start:end]
            assert stats.mean(start, end) == pytest.approx(segment.mean(), abs=1e-9)
            assert stats.std(start, end) == pytest.approx(segment.std(), abs=1e-9)

    def test_znorm_matches_scalar_znorm(self, rng):
        series = _random_series(rng, 300, flat_span=(50, 120))
        stats = kernels.SeriesStats(series)
        for start, end in [(0, 30), (55, 110), (40, 140), (298, 300)]:
            expected = znorm(series[start:end])
            assert np.allclose(stats.znorm(start, end), expected, atol=1e-9)

    def test_bounds_checked(self):
        stats = kernels.SeriesStats(np.arange(10.0))
        with pytest.raises(ParameterError):
            stats.mean(5, 11)
        with pytest.raises(ParameterError):
            stats.znorm(4, 4)

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            kernels.SeriesStats(np.zeros((3, 3)))


class TestOneVsAll:
    def test_matches_pairwise_euclidean(self, rng):
        matrix = rng.normal(size=(40, 25))
        query = rng.normal(size=25)
        sq = kernels.one_vs_all_sq_euclidean(query, matrix)
        expected = np.array([euclidean(query, row) ** 2 for row in matrix])
        assert np.allclose(sq, expected, atol=1e-9)

    def test_precomputed_norms_identical(self, rng):
        matrix = rng.normal(size=(10, 8))
        query = rng.normal(size=8)
        plain = kernels.one_vs_all_sq_euclidean(query, matrix)
        primed = kernels.one_vs_all_sq_euclidean(
            query,
            matrix,
            query_sqnorm=float(np.dot(query, query)),
            sqnorms=kernels.row_sqnorms(matrix),
        )
        assert np.array_equal(plain, primed)

    def test_self_distance_clipped_to_zero(self, rng):
        row = rng.normal(size=30)
        sq = kernels.one_vs_all_sq_euclidean(row, np.stack([row, row]))
        assert (sq >= 0.0).all()
        assert np.allclose(sq, 0.0, atol=1e-9)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ParameterError):
            kernels.one_vs_all_sq_euclidean(np.zeros(3), np.zeros((2, 4)))

    def test_cutoff_matches_scalar_early_abandon(self, rng):
        matrix = rng.normal(size=(50, 16))
        query = rng.normal(size=16)
        cutoff = 4.0
        batch = kernels.one_vs_all_euclidean(query, matrix, cutoff=cutoff)
        for row, got in zip(matrix, batch):
            expected = euclidean_early_abandon(query, row, cutoff)
            if np.isinf(expected):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(expected, abs=1e-9)


class TestEarlyAbandonFilter:
    def test_above_cutoff_becomes_inf(self):
        dists = np.array([0.5, 2.0, 3.5])
        out = kernels.early_abandon_filter(dists, 2.0)
        assert out[0] == 0.5 and out[1] == 2.0 and np.isinf(out[2])

    def test_infinite_cutoff_is_identity(self):
        dists = np.array([1.0, 9.0])
        assert np.array_equal(kernels.early_abandon_filter(dists, np.inf), dists)

    def test_first_below(self):
        assert kernels.first_below(np.array([3.0, 2.0, 0.5, 0.1]), 1.0) == 2
        assert kernels.first_below(np.array([3.0, 2.0]), 1.0) == -1
        assert kernels.first_below(np.array([]), 1.0) == -1


class TestSlidingAlignment:
    @pytest.mark.parametrize("short_len,long_len", [(2, 9), (5, 6), (7, 7), (10, 50)])
    def test_profile_matches_offset_loop(self, rng, short_len, long_len):
        short = rng.normal(size=short_len)
        long_ = rng.normal(size=long_len)
        profile = kernels.sliding_alignment_sq_profile(short, long_)
        expected = np.array(
            [
                np.sum((short - long_[o : o + short_len]) ** 2)
                for o in range(long_len - short_len + 1)
            ]
        )
        assert np.allclose(profile, expected, atol=1e-9)

    def test_min_distance_matches_scalar_reference(self, rng):
        for _ in range(25):
            n = int(rng.integers(2, 20))
            m = int(rng.integers(n, 40))
            p = rng.normal(size=n)
            q = rng.normal(size=m)
            expected = variable_length_distance(p, q, normalize_inputs=False)
            got = kernels.variable_length_kernel(p, q)
            assert got == pytest.approx(expected, abs=1e-9)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ParameterError):
            kernels.variable_length_kernel(np.array([]), np.ones(3))
        with pytest.raises(ParameterError):
            kernels.sliding_alignment_sq_profile(np.ones(5), np.ones(3))


class TestCounterBatch:
    def test_batch_accumulates(self):
        counter = DistanceCounter()
        counter.batch(7)
        counter.batch(0)
        counter.batch(3)
        assert counter.calls == 10

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            DistanceCounter().batch(-1)


def _candidates_for(series, window=40, paa=4, alpha=4):
    from repro.grammar.intervals import rule_intervals, uncovered_intervals
    from repro.grammar.sequitur import induce_grammar
    from repro.sax.discretize import discretize

    disc = discretize(series, window, paa, alpha)
    grammar = induce_grammar(disc.tokens())
    return rule_intervals(grammar, disc) + uncovered_intervals(grammar, disc)


def _blip_series(length=800, period=50, blip_at=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.02, length)
    series[blip_at : blip_at + 60] += 2.5
    return series


class TestBackendCallCountIdentity:
    """`DistanceCounter.calls` must be identical across backends."""

    def test_rra_find_discord(self):
        series = _blip_series()
        candidates = _candidates_for(series)
        results = {}
        for backend in kernels.BACKENDS:
            counter = DistanceCounter()
            discord, _ = find_discord(
                series,
                candidates,
                counter=counter,
                rng=np.random.default_rng(11),
                backend=backend,
            )
            results[backend] = (counter.calls, discord.start, discord.end)
        assert results["kernel"] == results["scalar"]
        assert results["kernel"][0] > 0

    def test_rra_find_discords_multi_rank(self):
        series = _blip_series()
        candidates = _candidates_for(series)
        outcomes = {}
        for backend in kernels.BACKENDS:
            result = find_discords(
                series,
                candidates,
                num_discords=3,
                rng=np.random.default_rng(5),
                backend=backend,
            )
            outcomes[backend] = (
                result.distance_calls,
                [(d.start, d.end, d.rank) for d in result.discords],
            )
        assert outcomes["kernel"] == outcomes["scalar"]

    def test_rra_scores_match_across_backends(self):
        series = _blip_series(length=600)
        candidates = _candidates_for(series)
        scores = {}
        for backend in kernels.BACKENDS:
            result = find_discords(
                series,
                candidates,
                num_discords=2,
                rng=np.random.default_rng(2),
                backend=backend,
            )
            scores[backend] = [d.nn_distance for d in result.discords]
        assert scores["kernel"] == pytest.approx(scores["scalar"], abs=1e-9)

    def test_hotsax(self, sine_bump):
        outcomes = {}
        for backend in kernels.BACKENDS:
            result = hotsax_discords(
                sine_bump.series,
                100,
                num_discords=2,
                rng=np.random.default_rng(0),
                backend=backend,
            )
            outcomes[backend] = (
                result.distance_calls,
                [(d.start, d.end) for d in result.discords],
            )
        assert outcomes["kernel"] == outcomes["scalar"]

    def test_haar(self, short_series):
        outcomes = {}
        for backend in kernels.BACKENDS:
            result = haar_discords(
                short_series,
                40,
                num_discords=1,
                rng=np.random.default_rng(0),
                backend=backend,
            )
            outcomes[backend] = (
                result.distance_calls,
                [(d.start, d.end) for d in result.discords],
            )
        assert outcomes["kernel"] == outcomes["scalar"]

    @pytest.mark.parametrize("early_abandon", [False, True])
    def test_brute_force(self, short_series, early_abandon):
        outcomes = {}
        for backend in kernels.BACKENDS:
            counter = DistanceCounter()
            discord, _ = brute_force_discord(
                short_series,
                40,
                counter=counter,
                early_abandon=early_abandon,
                backend=backend,
            )
            outcomes[backend] = (counter.calls, discord.start, discord.end)
        assert outcomes["kernel"] == outcomes["scalar"]

    def test_nearest_neighbor_distances(self):
        series = _blip_series(length=500)
        candidates = _candidates_for(series)
        profiles = {}
        for backend in kernels.BACKENDS:
            counter = DistanceCounter()
            profile = nearest_neighbor_distances(
                series, candidates, counter=counter, backend=backend
            )
            profiles[backend] = (counter.calls, profile)
        assert profiles["kernel"][0] == profiles["scalar"][0]
        kernel_profile = profiles["kernel"][1]
        scalar_profile = profiles["scalar"][1]
        assert len(kernel_profile) == len(scalar_profile)
        for (iv_k, d_k), (iv_s, d_s) in zip(kernel_profile, scalar_profile):
            assert iv_k == iv_s
            if np.isinf(d_s):
                assert np.isinf(d_k)
            else:
                assert d_k == pytest.approx(d_s, abs=1e-9)

    def test_unknown_backend_rejected_everywhere(self, short_series):
        with pytest.raises(ParameterError):
            brute_force_discord(short_series, 40, backend="gpu")
        with pytest.raises(ParameterError):
            find_discord(short_series, [], backend="gpu")
        with pytest.raises(ParameterError):
            nearest_neighbor_distances(short_series, [], backend="gpu")

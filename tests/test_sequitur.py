"""Tests for repro.grammar.sequitur — the Sequitur induction algorithm.

The property tests verify the two Sequitur invariants on random inputs:
digram uniqueness and rule utility, plus the fundamental guarantee that
the grammar reproduces its input exactly, with correct occurrence spans.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GrammarError
from repro.grammar.grammar import START_RULE_ID, Grammar, GrammarRule
from repro.grammar.sequitur import induce_grammar

token = st.sampled_from(["a", "b", "c", "d"])
token_seqs = st.lists(token, min_size=0, max_size=200)


def _digram_multiset(grammar: Grammar) -> Counter:
    """Non-overlapping digram counts over all rule bodies.

    Overlapping digrams (the middle pairs of a run like ``aaa``) are
    exempt from the uniqueness invariant: the algorithm cannot replace
    two occurrences that share a symbol, so it deliberately ignores
    them.  We therefore count greedily left-to-right, skipping a pair
    that overlaps the previously counted identical pair.
    """
    counts: Counter = Counter()
    for rule in grammar:
        rhs = [("R", x) if isinstance(x, int) else ("t", x) for x in rule.rhs]
        i = 0
        prev_counted_at = -2
        prev_key = None
        while i < len(rhs) - 1:
            key = (rhs[i], rhs[i + 1])
            if key == prev_key and i == prev_counted_at + 1:
                i += 1
                continue
            counts[key] += 1
            prev_key = key
            prev_counted_at = i
            i += 1
    return counts


class TestPaperExample:
    """The worked example from Section 3 of the paper."""

    def test_grammar_structure(self):
        tokens = "abc abc cba xxx abc abc cba".split()
        grammar = induce_grammar(tokens)
        grammar.verify()
        # exactly one induced rule: R1 -> abc abc cba, used twice
        rules = grammar.non_start_rules()
        assert len(rules) == 1
        assert rules[0].expansion == ["abc", "abc", "cba"]
        assert rules[0].usage == 2

    def test_xxx_is_uncovered(self):
        tokens = "abc abc cba xxx abc abc cba".split()
        grammar = induce_grammar(tokens)
        # the anomalous token stays directly in R0
        assert "xxx" in grammar.start_rule.rhs

    def test_rule_word_counts(self):
        """Each 'abc'/'cba' is inside R1; 'xxx' is inside no rule."""
        tokens = "abc abc cba xxx abc abc cba".split()
        grammar = induce_grammar(tokens)
        covered = [0] * len(tokens)
        for rule in grammar.non_start_rules():
            for occ in rule.occurrences:
                for i in range(occ.start, occ.end + 1):
                    covered[i] += 1
        assert covered == [1, 1, 1, 0, 1, 1, 1]


class TestNumerosityExample:
    """The S1 example from Section 3.3 (variable-length rule spans)."""

    def test_shared_rule_spans_variable_token_counts(self):
        tokens = "aac abc abb acd aac abc".split()
        grammar = induce_grammar(tokens)
        grammar.verify()
        rules = grammar.non_start_rules()
        assert len(rules) == 1
        assert rules[0].expansion == ["aac", "abc"]
        starts = sorted(o.start for o in rules[0].occurrences)
        assert starts == [0, 4]


class TestBasics:
    def test_empty_input(self):
        grammar = induce_grammar([])
        grammar.verify()
        assert grammar.start_rule.rhs == []

    def test_single_token(self):
        grammar = induce_grammar(["x"])
        grammar.verify()
        assert grammar.start_rule.expansion == ["x"]
        assert len(grammar.non_start_rules()) == 0

    def test_two_identical_tokens_no_rule(self):
        # a digram must occur twice to trigger a rule
        grammar = induce_grammar(["a", "a"])
        grammar.verify()
        assert len(grammar.non_start_rules()) == 0

    def test_simple_repeat(self):
        grammar = induce_grammar(list("abab"))
        grammar.verify()
        rules = grammar.non_start_rules()
        assert len(rules) == 1
        assert rules[0].expansion == ["a", "b"]
        assert rules[0].usage == 2

    def test_nested_hierarchy(self):
        # abcabc abcabc -> R1=abc (x4 via R2), R2=R1 R1 (x2)
        grammar = induce_grammar(list("abcabcabcabc"))
        grammar.verify()
        assert grammar.start_rule.expansion == list("abcabcabcabc")
        assert len(grammar.non_start_rules()) >= 1
        # deepest rule level above 1 proves hierarchy
        assert max(r.level for r in grammar.non_start_rules()) >= 2

    def test_all_same_token(self):
        grammar = induce_grammar(["z"] * 64)
        grammar.verify()
        # repetitive input compresses well
        assert grammar.grammar_size() < 30

    def test_all_distinct_tokens_incompressible(self):
        tokens = [f"t{i}" for i in range(50)]
        grammar = induce_grammar(tokens)
        grammar.verify()
        assert len(grammar.non_start_rules()) == 0
        assert grammar.grammar_size() == 50

    def test_tokens_coerced_to_str(self):
        grammar = induce_grammar([1, 2, 1, 2])  # type: ignore[list-item]
        assert grammar.start_rule.expansion == ["1", "2", "1", "2"]

    def test_occurrence_spans_match_expansion(self):
        tokens = list("xyxyzxyxyz")
        grammar = induce_grammar(tokens)
        for rule in grammar.non_start_rules():
            for occ in rule.occurrences:
                assert tokens[occ.start : occ.end + 1] == rule.expansion

    def test_algorithm_tag(self):
        assert induce_grammar(list("abab")).algorithm == "sequitur"


class TestInvariants:
    @given(token_seqs)
    @settings(max_examples=150, deadline=None)
    def test_property_expansion_reproduces_input(self, tokens):
        grammar = induce_grammar(tokens)
        assert grammar.start_rule.expansion == tokens

    @given(token_seqs)
    @settings(max_examples=150, deadline=None)
    def test_property_digram_uniqueness(self, tokens):
        """No digram occurs twice across all rule bodies."""
        grammar = induce_grammar(tokens)
        for digram, count in _digram_multiset(grammar).items():
            assert count <= 1, f"digram {digram} occurs {count} times"

    @given(token_seqs)
    @settings(max_examples=150, deadline=None)
    def test_property_rule_utility(self, tokens):
        """Every non-start rule is referenced at least twice."""
        grammar = induce_grammar(tokens)
        refs: Counter = Counter()
        for rule in grammar:
            for item in rule.rhs:
                if isinstance(item, int):
                    refs[item] += 1
        for rule in grammar.non_start_rules():
            assert refs[rule.rule_id] >= 2, f"{rule.name} used {refs[rule.rule_id]}x"

    @given(token_seqs)
    @settings(max_examples=100, deadline=None)
    def test_property_occurrences_consistent(self, tokens):
        """usage == len(occurrences) and spans match expansions."""
        grammar = induce_grammar(tokens)
        grammar.verify()
        for rule in grammar.non_start_rules():
            assert rule.usage == len(rule.occurrences) >= 2
            for occ in rule.occurrences:
                assert tokens[occ.start : occ.end + 1] == rule.expansion

    @given(token_seqs)
    @settings(max_examples=100, deadline=None)
    def test_property_grammar_never_longer_than_input(self, tokens):
        """Compression never expands: size <= max(len(input), 1)."""
        grammar = induce_grammar(tokens)
        assert grammar.grammar_size() <= max(len(tokens), 1) + 1

    @given(st.lists(st.sampled_from(["a", "b"]), min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_property_binary_alphabet_stress(self, tokens):
        """Binary alphabets maximize digram collisions — worst case."""
        grammar = induce_grammar(tokens)
        grammar.verify()

    def test_pathological_repetition_runs(self):
        """Runs like aaaa...b trigger the overlapping-digram handling."""
        for run in (2, 3, 4, 5, 7, 10, 16, 33):
            tokens = ["a"] * run + ["b"] + ["a"] * run
            grammar = induce_grammar(tokens)
            grammar.verify()

    def test_square_input(self):
        """w w for a long w: one rule should cover the repetition."""
        w = list("abcdefgh")
        grammar = induce_grammar(w + w)
        grammar.verify()
        top = [r for r in grammar.non_start_rules() if r.expansion == w]
        assert top and top[0].usage == 2


class TestCompressionQuality:
    def test_periodic_input_compresses_logarithmically(self):
        tokens = list("ab" * 256)
        grammar = induce_grammar(tokens)
        # Sequitur achieves O(log n) size on (ab)^n
        assert grammar.grammar_size() <= 40

    def test_random_input_barely_compresses(self, rng):
        tokens = [str(rng.integers(0, 1000)) for _ in range(200)]
        grammar = induce_grammar(tokens)
        assert grammar.grammar_size() >= 150


class TestGrammarVerify:
    def test_detects_bad_expansion(self):
        grammar = induce_grammar(list("abab"))
        grammar.rules[1].expansion = ["x", "y"]
        with pytest.raises(GrammarError):
            grammar.verify()

    def test_detects_missing_start_rule(self):
        with pytest.raises(GrammarError):
            Grammar(tokens=[], rules={1: GrammarRule(rule_id=1, rhs=[])})

"""Tests for repro.core.parameter_grid (the Figure 10 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameter_grid import (
    GridPoint,
    ParameterGridStudy,
    _hit,
    _paa_reconstruct,
    approximation_distance,
)
from repro.datasets import sine_with_anomaly
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def bump():
    return sine_with_anomaly(
        length=1500, period=100, anomaly_start=700, anomaly_length=90,
        anomaly_kind="bump", noise=0.03, seed=11,
    )


class TestApproximationDistance:
    def test_finer_paa_smaller_error(self, bump):
        coarse = approximation_distance(bump.series, 100, 3, sample_stride=25)
        fine = approximation_distance(bump.series, 100, 20, sample_stride=25)
        assert fine < coarse

    def test_identity_paa_zero_error(self, bump):
        # w == n reconstructs exactly
        err = approximation_distance(bump.series, 50, 50, sample_stride=50)
        assert err == pytest.approx(0.0, abs=1e-9)

    def test_invalid_stride(self, bump):
        with pytest.raises(ParameterError):
            approximation_distance(bump.series, 50, 5, sample_stride=0)

    def test_series_too_short(self):
        with pytest.raises(ParameterError):
            approximation_distance(np.zeros(10), 20, 4)


class TestPaaReconstruct:
    def test_divisible(self):
        means = np.array([1.0, 2.0])
        np.testing.assert_array_equal(
            _paa_reconstruct(means, 4), [1.0, 1.0, 2.0, 2.0]
        )

    def test_non_divisible_lengths(self):
        out = _paa_reconstruct(np.array([1.0, 2.0, 3.0]), 7)
        assert out.size == 7
        assert out[0] == 1.0 and out[-1] == 3.0


class TestHitHelper:
    def test_overlap_relative_to_shorter(self):
        # short found interval fully inside long truth counts as a hit
        assert _hit([(100, 110)], 50, 300, 0.5)
        assert not _hit([(0, 40)], 50, 300, 0.5)


class TestStudy:
    def test_invalid_truth(self, bump):
        with pytest.raises(ParameterError):
            ParameterGridStudy(bump.series, (900, 100))

    def test_evaluate_point_invalid_combo_none(self, bump):
        study = ParameterGridStudy(bump.series, bump.anomalies[0])
        assert study.evaluate_point(50, 60, 4) is None  # paa > window
        assert study.evaluate_point(5000, 4, 4) is None  # window > series

    def test_evaluate_point_fields(self, bump):
        study = ParameterGridStudy(bump.series, bump.anomalies[0])
        point = study.evaluate_point(100, 5, 4)
        assert isinstance(point, GridPoint)
        assert point.grammar_size > 0
        assert point.approximation_distance > 0

    def test_good_parameters_hit(self, bump):
        # Not every combination succeeds (that is Figure 10's point);
        # this one is verified to sit inside the success region.
        study = ParameterGridStudy(bump.series, bump.anomalies[0], min_overlap=0.3)
        point = study.evaluate_point(50, 4, 4)
        assert point.rra_hit
        # the paper-faithful density detector is edge-sensitive; the
        # enhanced (edge-excluded) variant hits reliably
        assert point.density_hit_enhanced

    def test_sweep_and_counts(self, bump):
        study = ParameterGridStudy(bump.series, bump.anomalies[0], min_overlap=0.3)
        points = study.sweep(windows=[40, 80], paa_sizes=[4], alphabet_sizes=[3, 4])
        assert 1 <= len(points) <= 4
        counts = ParameterGridStudy.success_counts(points)
        assert counts["total"] == len(points)
        assert 0 <= counts["density_hits"] <= counts["total"]
        assert 0 <= counts["rra_hits"] <= counts["total"]


class TestSweepMemoization:
    def test_one_discretization_pass_per_pair(self, bump, monkeypatch):
        """Varying only the alphabet must not re-run ``windowed_paa``.

        The PAA coefficients depend on ``(window, paa_size)`` alone, so a
        context-backed sweep over A alphabet sizes performs exactly one
        discretization pass per valid pair — not one per cell.
        """
        import sys

        import repro.core.parameter_grid as grid_mod
        import repro.sax.discretize  # noqa: F401 - ensure module is loaded
        from repro.cache import SearchContext

        # ``repro.sax`` re-exports a *function* named ``discretize``,
        # which shadows the submodule on attribute access — go through
        # sys.modules to reach the module itself.
        discretize_mod = sys.modules["repro.sax.discretize"]

        real = discretize_mod.windowed_paa
        calls: list[tuple[int, int]] = []

        def counting(series, window, paa_size, **kwargs):
            calls.append((int(window), int(paa_size)))
            return real(series, window, paa_size, **kwargs)

        # The context imports lazily from the module; the grid binds the
        # name at import time — patch both entry points.
        monkeypatch.setattr(discretize_mod, "windowed_paa", counting)
        monkeypatch.setattr(grid_mod, "windowed_paa", counting)

        study = ParameterGridStudy(bump.series, bump.anomalies[0], min_overlap=0.3)
        points = study.sweep(
            windows=[40, 80],
            paa_sizes=[4, 6],
            alphabet_sizes=[3, 4, 5],
            context=SearchContext(),
        )
        assert points
        expected_pairs = {(40, 4), (40, 6), (80, 4), (80, 6)}
        assert sorted(calls) == sorted(expected_pairs)

    def test_sweep_cache_warm_equals_cold(self, bump, tmp_path):
        from repro.cache import ResultCache

        study = ParameterGridStudy(bump.series, bump.anomalies[0], min_overlap=0.3)
        grid = dict(windows=[40, 80], paa_sizes=[4], alphabet_sizes=[3, 4])
        plain = study.sweep(**grid)
        cache = ResultCache(tmp_path / "store")
        cold = study.sweep(**grid, cache=cache)
        assert cold == plain
        warm = study.sweep(**grid, cache=cache)
        assert warm == plain
        assert cache.hits == len(plain)
        # An overlapping, larger grid reuses the stored cells and only
        # computes the new ones.
        wider = study.sweep(
            windows=[40, 80], paa_sizes=[4], alphabet_sizes=[3, 4, 5],
            cache=cache,
        )
        assert all(point in wider for point in plain)

    @pytest.mark.slow
    def test_parallel_sweep_cache_matches_serial(self, bump, tmp_path):
        from repro.cache import ResultCache

        study = ParameterGridStudy(bump.series, bump.anomalies[0], min_overlap=0.3)
        grid = dict(windows=[40, 80], paa_sizes=[4], alphabet_sizes=[3, 4])
        plain = study.sweep(**grid)
        cache = ResultCache(tmp_path / "store")
        # Cold parallel sweep populates; warm parallel sweep is answered
        # from the store without sharding any work.
        cold = study.sweep(**grid, cache=cache, n_workers=2)
        assert cold == plain
        warm = study.sweep(**grid, cache=cache, n_workers=2)
        assert warm == plain
        assert cache.hits >= len(plain)


class TestGridCellError:
    """One bad cell in a sweep must surface with its triple attached.

    Fit failures are expected invalid cells (``None``), but a cell that
    fits and then blows up in a detector is a genuine bug — the old
    behaviour was a bare re-raise with no hint of which of the hundreds
    of cells died.
    """

    def test_post_fit_failure_names_the_triple(self, bump, monkeypatch):
        from repro.core.pipeline import GrammarAnomalyDetector
        from repro.exceptions import GridCellError

        def boom(self, **kwargs):
            raise RuntimeError("synthetic detector failure")

        monkeypatch.setattr(GrammarAnomalyDetector, "discords", boom)
        study = ParameterGridStudy(bump.series, (700, 790))
        with pytest.raises(GridCellError) as excinfo:
            study.evaluate_point(100, 4, 4)
        message = str(excinfo.value)
        assert "window=100" in message
        assert "paa_size=4" in message
        assert "alphabet_size=4" in message
        assert "RuntimeError" in message
        assert excinfo.value.cell == (100, 4, 4)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_sweep_surfaces_the_failing_cell(self, bump, monkeypatch):
        from repro.core.pipeline import GrammarAnomalyDetector
        from repro.exceptions import GridCellError

        original = GrammarAnomalyDetector.discords

        def boom_only_w120(self, **kwargs):
            if self.window == 120:
                raise RuntimeError("synthetic detector failure")
            return original(self, **kwargs)

        monkeypatch.setattr(GrammarAnomalyDetector, "discords", boom_only_w120)
        study = ParameterGridStudy(bump.series, (700, 790))
        with pytest.raises(GridCellError) as excinfo:
            study.sweep([100, 120], [4], [4])
        assert excinfo.value.cell == (120, 4, 4)

    def test_fit_failures_stay_invalid_cells(self, bump):
        # Geometrically impossible cells still come back as None, not
        # as GridCellError: window longer than the series.
        study = ParameterGridStudy(bump.series, (700, 790))
        assert study.evaluate_point(len(bump.series) + 10, 4, 4) is None

    def test_pickle_roundtrip_keeps_cell(self):
        import pickle

        from repro.exceptions import GridCellError

        err = GridCellError("grid cell (window=9, ...) failed", (9, 4, 3))
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, GridCellError)
        assert str(clone) == str(err)
        assert clone.cell == (9, 4, 3)

"""Run the library's docstring examples as doctests.

Every ``>>>`` example in a public docstring is executable documentation;
this module guards it against drift.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.baselines.viztree
import repro.core.pipeline
import repro.streaming.detector
import repro.streaming.online_sax
import repro.streaming.online_sequitur
import repro.streaming.window_stats
import repro.timeseries.znorm
import repro.visualization.ascii

MODULES = [
    repro,
    repro.core.pipeline,
    repro.streaming.detector,
    repro.streaming.online_sax,
    repro.streaming.online_sequitur,
    repro.streaming.window_stats,
    repro.baselines.viztree,
    repro.visualization.ascii,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    # modules listed here are expected to actually contain examples
    assert results.attempted > 0, f"{module.__name__} has no doctests"

"""Hypothesis property tests for the DistanceCounter ledger algebra.

The parallel engine folds per-worker counters into the parent with
:meth:`DistanceCounter.merge` / ``+=`` and checkpoint resume rebuilds a
counter from a pruned-prefix ledger via :meth:`restore_ledger`.  Both
promise the same invariants regardless of how the work was sliced:

* ``calls == true_calls + pruned`` is preserved by every operation that
  starts from counters satisfying it;
* merging is associative and commutative — any shard order, any
  grouping, same totals;
* ``restore_ledger`` then merging the remaining shards equals merging
  everything from scratch (the checkpoint-resume identity).

These are exercised here with Hypothesis over arbitrary operation
counts, merge orders, and interleaved reconstructions.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.distance import DistanceCounter


def make_counter(ops):
    """Build a counter from a list of (kind, count) recording operations."""
    counter = DistanceCounter()
    for kind, count in ops:
        if kind == "batch":
            counter.batch(count)
        elif kind == "pruned":
            counter.pruned_batch(count)
        else:
            counter.lb_batch(count)
    return counter


operation = st.tuples(
    st.sampled_from(["batch", "pruned", "lb"]),
    st.integers(min_value=0, max_value=10_000),
)
op_list = st.lists(operation, max_size=30)
counter_strategy = op_list.map(make_counter)


def ledgers_equal(a: DistanceCounter, b: DistanceCounter) -> bool:
    return a.ledger() == b.ledger()


@given(op_list)
def test_recording_preserves_split_invariant(ops):
    counter = make_counter(ops)
    assert counter.calls == counter.true_calls + counter.pruned


@given(counter_strategy, counter_strategy)
def test_merge_preserves_split_invariant(a, b):
    a.merge(b)
    assert a.calls == a.true_calls + a.pruned


@given(st.lists(op_list, min_size=1, max_size=6), st.randoms(use_true_random=False))
def test_merge_order_is_irrelevant(shards_ops, rnd):
    """Commutativity: any permutation of worker shards merges to the same."""
    in_order = DistanceCounter()
    for ops in shards_ops:
        in_order += make_counter(ops)

    shuffled_ops = list(shards_ops)
    rnd.shuffle(shuffled_ops)
    shuffled = DistanceCounter()
    for ops in shuffled_ops:
        shuffled += make_counter(ops)

    assert ledgers_equal(in_order, shuffled)


@given(counter_strategy, counter_strategy, counter_strategy)
def test_merge_is_associative(a, b, c):
    left = make_counter([])
    left.restore_ledger(a.ledger())
    ab = make_counter([])
    ab.restore_ledger(a.ledger())
    ab.merge(b)

    # (a + b) + c
    grouped_left = make_counter([])
    grouped_left.restore_ledger(ab.ledger())
    grouped_left.merge(c)

    # a + (b + c)
    bc = make_counter([])
    bc.restore_ledger(b.ledger())
    bc.merge(c)
    grouped_right = make_counter([])
    grouped_right.restore_ledger(a.ledger())
    grouped_right.merge(bc)

    assert ledgers_equal(grouped_left, grouped_right)


@given(op_list, st.integers(min_value=0, max_value=30))
def test_pruned_prefix_reconstruction(ops, split_at):
    """Checkpoint-resume identity: restore a prefix ledger, replay the rest.

    A resumed search restores the ledger saved at the checkpoint
    boundary and keeps recording; the final ledger must equal the
    uninterrupted run's, wherever the boundary fell.
    """
    split_at = min(split_at, len(ops))
    full = make_counter(ops)

    prefix = make_counter(ops[:split_at])
    resumed = DistanceCounter()
    resumed.restore_ledger(prefix.ledger())
    for kind, count in ops[split_at:]:
        if kind == "batch":
            resumed.batch(count)
        elif kind == "pruned":
            resumed.pruned_batch(count)
        else:
            resumed.lb_batch(count)

    assert ledgers_equal(full, resumed)
    assert resumed.calls == resumed.true_calls + resumed.pruned


@given(st.lists(op_list, min_size=2, max_size=5), st.data())
@settings(max_examples=50)
def test_interleaved_restore_and_merge(shards_ops, data):
    """Mixing restore_ledger-rebuilt shards with live shards changes nothing."""
    direct = DistanceCounter()
    for ops in shards_ops:
        direct += make_counter(ops)

    mixed = DistanceCounter()
    for ops in shards_ops:
        live = make_counter(ops)
        if data.draw(st.booleans()):
            rebuilt = DistanceCounter()
            rebuilt.restore_ledger(live.ledger())
            mixed += rebuilt
        else:
            mixed += live

    assert ledgers_equal(direct, mixed)


@given(counter_strategy)
def test_ledger_roundtrip_is_lossless(counter):
    clone = DistanceCounter()
    clone.restore_ledger(counter.ledger())
    assert ledgers_equal(counter, clone)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=48),
    st.booleans(),
)
def test_batch_tile_partition_preserves_ledger(seed, tile_rows, prune):
    """The batch backend's ledger is a pure function of the search, not
    of how its outer loop was partitioned into GEMM tiles.

    The serial replay inside each tile carries the exact kernel-scan
    trajectory, so for ANY tile size the recorded split ledger — and the
    discords — must equal the kernel backend's, which is itself pinned
    by the golden-count suite.
    """
    from repro.discord import batch
    from repro.discord.hotsax import hotsax_discords

    rng = np.random.default_rng(seed)
    series = np.sin(np.linspace(0.0, 10.0, 150)) + 0.2 * rng.normal(size=150)
    kernel_counter = DistanceCounter()
    kernel = hotsax_discords(
        series, 14, num_discords=2, counter=kernel_counter, prune=prune
    )
    old = batch.DEFAULT_TILE_ROWS
    batch.DEFAULT_TILE_ROWS = tile_rows
    try:
        batch_counter = DistanceCounter()
        batched = hotsax_discords(
            series, 14, num_discords=2, counter=batch_counter,
            prune=prune, backend="batch",
        )
    finally:
        batch.DEFAULT_TILE_ROWS = old
    assert ledgers_equal(kernel_counter, batch_counter)
    assert [(d.start, d.end) for d in kernel.discords] == [
        (d.start, d.end) for d in batched.discords
    ]


@given(op_list)
def test_legacy_ledger_defaults(ops):
    """Pre-pruning checkpoints carried only ``calls``; the split defaults
    to all-true so ``calls == true_calls + pruned`` still holds."""
    counter = make_counter(ops)
    legacy = {"calls": counter.calls}
    restored = DistanceCounter()
    restored.restore_ledger(legacy)
    assert restored.calls == counter.calls
    assert restored.true_calls == counter.calls
    assert restored.pruned == 0
    assert restored.calls == restored.true_calls + restored.pruned

"""Tests for repro.baselines.bitmap — the time-series-bitmap baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bitmap import (
    _bitmap_distance,
    _subword_frequencies,
    bitmap_anomalies,
    bitmap_scores,
)
from repro.exceptions import ParameterError


def _regime_change(length=2000, period=100, at=1200, seed=0):
    """Sine that switches to double frequency at *at*."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period)
    series[at:] = np.sin(2 * np.pi * 2 * np.arange(length - at) / period)
    return series + rng.normal(0, 0.02, length)


class TestSubwordFrequencies:
    def test_counts(self):
        counts = _subword_frequencies("abab", 2)
        assert counts == {"ab": 2, "ba": 1}

    def test_subword_equals_word(self):
        assert _subword_frequencies("abc", 3) == {"abc": 1}


class TestBitmapDistance:
    def test_identical_maps_zero(self):
        counts = _subword_frequencies("abcabc", 2)
        assert _bitmap_distance(counts, counts) == 0.0

    def test_disjoint_maps_positive(self):
        a = _subword_frequencies("aaaa", 2)
        b = _subword_frequencies("dddd", 2)
        assert _bitmap_distance(a, b) > 1.0

    def test_scale_invariant(self):
        a = _subword_frequencies("abab", 2)
        b = _subword_frequencies("abababab", 2)
        # same distribution at different lengths -> near zero
        assert _bitmap_distance(a, b) < 0.15


class TestBitmapScores:
    def test_peak_at_regime_change(self):
        series = _regime_change()
        scores = bitmap_scores(series, lag=200, lead=100, stride=4)
        peak = int(np.argmax(scores))
        assert 1100 <= peak <= 1350

    def test_output_length(self):
        series = _regime_change(length=800)
        scores = bitmap_scores(series, lag=100, lead=50)
        assert scores.size == 800

    def test_quiet_on_stationary_series(self, rng):
        t = np.arange(1500)
        series = np.sin(2 * np.pi * t / 100) + rng.normal(0, 0.02, 1500)
        scores = bitmap_scores(series, lag=200, lead=100, stride=4)
        # stationary data: change scores stay small everywhere
        assert scores.max() < 0.8

    def test_parameter_validation(self):
        series = _regime_change(length=500)
        with pytest.raises(ParameterError):
            bitmap_scores(series, lag=1, lead=100)
        with pytest.raises(ParameterError):
            bitmap_scores(series, lag=400, lead=200)  # longer than series
        with pytest.raises(ParameterError):
            bitmap_scores(series, lag=100, lead=50, subword_length=0)
        with pytest.raises(ParameterError):
            bitmap_scores(series, lag=100, lead=50, stride=0)


class TestBitmapAnomalies:
    def test_top_anomaly_is_the_change(self):
        series = _regime_change()
        anomalies = bitmap_anomalies(series, num_anomalies=2, lag=200, lead=100)
        assert anomalies
        best = anomalies[0]
        assert best.start < 1350 and best.end > 1100
        assert best.source == "bitmap"

    def test_peaks_are_separated(self):
        series = _regime_change()
        anomalies = bitmap_anomalies(series, num_anomalies=3, lag=200, lead=100)
        starts = [a.start for a in anomalies]
        for i in range(len(starts)):
            for j in range(i + 1, len(starts)):
                assert abs(starts[i] - starts[j]) >= 100

    def test_invalid_count(self):
        with pytest.raises(ParameterError):
            bitmap_anomalies(_regime_change(), num_anomalies=0)

"""Tests for repro.discord (brute force + HOTSAX) and their agreement.

The critical contract: HOTSAX is *exact* — it must return the same
discord as brute force, only with fewer distance calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discord.brute_force import (
    brute_force_call_count,
    brute_force_discord,
    brute_force_discords,
)
from repro.discord.hotsax import hotsax_discord, hotsax_discords
from repro.exceptions import DiscordSearchError
from repro.timeseries.distance import DistanceCounter
from repro.timeseries.windows import num_windows


def _series_with_blip(length=400, period=40, blip_at=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.02, length)
    series[blip_at : blip_at + 30] += 2.0
    return series


class TestBruteForceCallCount:
    def test_small_exact(self):
        # m=10, n=3 -> k=8; enumerate by hand
        m, n = 10, 3
        k = num_windows(m, n)
        expected = sum(
            1 for p in range(k) for q in range(k) if abs(p - q) > n
        )
        assert brute_force_call_count(m, n) == expected

    def test_zero_when_too_short(self):
        assert brute_force_call_count(10, 10) == 0

    def test_paper_scale_magnitude(self):
        """Sanity: ECG300-scale count lands in the paper's ballpark."""
        count = brute_force_call_count(536_976, 300)
        assert 2.5e11 < count < 3.5e11  # paper reports 288 x 10^9

    def test_matches_actual_run(self):
        series = _series_with_blip(length=120)
        counter = DistanceCounter()
        brute_force_discord(series, 20, counter=counter, early_abandon=False)
        assert counter.calls == brute_force_call_count(120, 20)

    @staticmethod
    def _loop_reference(series_length: int, window: int) -> int:
        """The original O(k) summation the closed form replaced."""
        k = num_windows(series_length, window)
        total = 0
        for p in range(k):
            left = max(0, p - window)
            right = max(0, k - p - window - 1)
            total += left + right
        return total

    def test_closed_form_matches_loop_sweep(self):
        """Pin the closed form against the loop over a sweep of (m, n)."""
        for m in (1, 2, 5, 10, 33, 100, 257, 1000):
            for n in (1, 2, 3, 7, 20, 99, 100, 150):
                assert brute_force_call_count(m, n) == self._loop_reference(
                    m, n
                ), f"mismatch at m={m}, n={n}"


class TestBruteForceDiscord:
    def test_finds_planted_blip(self):
        series = _series_with_blip()
        discord, _ = brute_force_discord(series, 40)
        assert 160 <= discord.start <= 235

    def test_early_abandon_same_answer_fewer_calls(self):
        series = _series_with_blip()
        plain, c_plain = brute_force_discord(series, 40, early_abandon=False)
        fast, c_fast = brute_force_discord(series, 40, early_abandon=True)
        assert (plain.start, plain.end) == (fast.start, fast.end)
        assert plain.nn_distance == pytest.approx(fast.nn_distance)
        assert c_fast.calls <= c_plain.calls

    def test_too_short_series(self):
        with pytest.raises(DiscordSearchError):
            brute_force_discord(np.zeros(10), 10)

    def test_multi_discords_distinct(self):
        series = _series_with_blip()
        discords = brute_force_discords(series, 40, num_discords=2)
        assert len(discords) == 2
        assert abs(discords[0].start - discords[1].start) > 40

    def test_fixed_length_output(self):
        series = _series_with_blip()
        discord, _ = brute_force_discord(series, 40)
        assert discord.length == 40
        assert discord.source == "brute_force"


class TestHotsax:
    def test_finds_planted_blip(self):
        series = _series_with_blip()
        discord, _ = hotsax_discord(series, 40)
        assert 160 <= discord.start <= 235

    def test_agrees_with_brute_force(self):
        """HOTSAX is exact: same discord location and distance."""
        for seed in range(4):
            series = _series_with_blip(seed=seed, blip_at=80 + 40 * seed)
            brute, _ = brute_force_discord(series, 32)
            hot, _ = hotsax_discord(series, 32)
            assert (hot.start, hot.end) == (brute.start, brute.end), f"seed {seed}"
            assert hot.nn_distance == pytest.approx(brute.nn_distance)

    def test_fewer_calls_than_brute_force(self):
        series = _series_with_blip(length=600)
        _, hot_counter = hotsax_discord(series, 40)
        full = brute_force_call_count(600, 40)
        assert hot_counter.calls < full / 3

    def test_multi_discords(self):
        series = _series_with_blip()
        result = hotsax_discords(series, 40, num_discords=2)
        assert len(result.discords) == 2
        assert result.distance_calls > 0
        assert abs(result.discords[0].start - result.discords[1].start) > 40

    def test_ranked_scores_non_increasing(self):
        series = _series_with_blip()
        result = hotsax_discords(series, 40, num_discords=3)
        scores = [d.nn_distance for d in result.discords]
        assert scores == sorted(scores, reverse=True)

    def test_too_short_series(self):
        with pytest.raises(DiscordSearchError):
            hotsax_discord(np.zeros(5), 10)

    def test_invalid_num_discords(self):
        with pytest.raises(DiscordSearchError):
            hotsax_discords(np.zeros(100), 10, num_discords=0)

    def test_deterministic_given_seed(self):
        series = _series_with_blip()
        a, ca = hotsax_discord(series, 40, rng=np.random.default_rng(5))
        b, cb = hotsax_discord(series, 40, rng=np.random.default_rng(5))
        assert (a.start, a.nn_distance) == (b.start, b.nn_distance)
        assert ca.calls == cb.calls

    def test_sax_parameters_change_calls_not_result(self):
        series = _series_with_blip()
        d1, c1 = hotsax_discord(series, 40, paa_size=3, alphabet_size=3)
        d2, c2 = hotsax_discord(series, 40, paa_size=6, alphabet_size=5)
        assert (d1.start, d1.end) == (d2.start, d2.end)
        assert d1.nn_distance == pytest.approx(d2.nn_distance)

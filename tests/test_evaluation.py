"""Tests for repro.evaluation — interval detection metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    DetectionScores,
    detection_delays,
    interval_overlap,
    is_hit,
    overlap_fraction,
    score_detections,
)
from repro.exceptions import ParameterError

intervals = st.tuples(st.integers(0, 500), st.integers(1, 100)).map(
    lambda t: (t[0], t[0] + t[1])
)


class TestOverlap:
    def test_disjoint(self):
        assert interval_overlap((0, 10), (10, 20)) == 0

    def test_nested(self):
        assert interval_overlap((0, 100), (40, 60)) == 20

    def test_partial(self):
        assert interval_overlap((0, 10), (5, 15)) == 5

    def test_malformed_rejected(self):
        with pytest.raises(ParameterError):
            interval_overlap((5, 5), (0, 10))

    @given(intervals, intervals)
    @settings(max_examples=80, deadline=None)
    def test_property_symmetric(self, a, b):
        assert interval_overlap(a, b) == interval_overlap(b, a)

    @given(intervals, intervals)
    @settings(max_examples=80, deadline=None)
    def test_property_bounded_by_shorter(self, a, b):
        shorter = min(a[1] - a[0], b[1] - b[0])
        assert 0 <= interval_overlap(a, b) <= shorter
        assert 0.0 <= overlap_fraction(a, b) <= 1.0


class TestIsHit:
    def test_contained_short_detection_hits(self):
        assert is_hit((45, 55), (0, 100))

    def test_contained_short_truth_hits(self):
        assert is_hit((0, 100), (45, 55))

    def test_threshold(self):
        # overlap 5, shorter 10 -> fraction 0.5
        assert is_hit((0, 10), (5, 15), min_overlap=0.5)
        assert not is_hit((0, 10), (6, 16), min_overlap=0.5)

    def test_invalid_threshold(self):
        with pytest.raises(ParameterError):
            is_hit((0, 10), (0, 10), min_overlap=0.0)


class TestScoreDetections:
    def test_perfect(self):
        scores = score_detections([(0, 10), (50, 60)], [(0, 10), (50, 60)])
        assert scores.true_positives == 2
        assert scores.false_positives == 0
        assert scores.false_negatives == 0
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_miss_and_false_alarm(self):
        scores = score_detections([(200, 210)], [(0, 10)])
        assert scores.true_positives == 0
        assert scores.false_positives == 1
        assert scores.false_negatives == 1
        assert scores.f1 == 0.0

    def test_multiple_detections_one_event(self):
        """Two detections inside one long event: recall full, no FP."""
        scores = score_detections([(10, 20), (30, 40)], [(0, 100)])
        assert scores.true_positives == 1
        assert scores.false_positives == 0
        assert scores.recall == 1.0

    def test_one_detection_two_events(self):
        scores = score_detections([(0, 100)], [(10, 20), (60, 70)])
        assert scores.true_positives == 2
        assert scores.false_negatives == 0

    def test_empty_cases(self):
        assert score_detections([], []).f1 == 0.0
        assert score_detections([], [(0, 5)]).false_negatives == 1
        assert score_detections([(0, 5)], []).false_positives == 1

    @given(
        st.lists(intervals, max_size=8),
        st.lists(intervals, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_counts_consistent(self, found, truth):
        scores = score_detections(found, truth)
        assert scores.true_positives + scores.false_negatives == len(truth)
        assert scores.false_positives <= len(found)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f1 <= 1.0


class TestDetectionDelays:
    def test_earliest_alarm_wins(self):
        alarms = [((100, 150), 400), ((100, 150), 250)]
        delays = detection_delays(alarms, [(100, 160)])
        assert delays == [150]  # 250 - 100

    def test_unrecovered_event_skipped(self):
        delays = detection_delays([((0, 10), 50)], [(500, 600)])
        assert delays == []

    def test_multiple_events(self):
        alarms = [((100, 150), 200), ((500, 560), 700)]
        delays = detection_delays(alarms, [(100, 160), (500, 570)])
        assert delays == [100, 200]

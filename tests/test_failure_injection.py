"""Failure-injection tests: hostile inputs must fail cleanly or cope.

Production-quality requirement: no silent nonsense.  Every pathological
input either raises a :class:`~repro.exceptions.ReproError` subclass
with a useful message, or produces a well-defined degenerate result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets import sine_with_anomaly
from repro.exceptions import ReproError
from repro.grammar.sequitur import induce_grammar
from repro.sax.discretize import discretize
from repro.streaming import StreamingAnomalyDetector


class TestDegenerateSeries:
    def test_constant_series_pipeline(self):
        """All-flat input: one token, trivial grammar, no discords."""
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(np.full(1000, 3.0))
        assert len(result.discretization) == 1
        rra = detector.discords(num_discords=1)
        assert rra.discords == []  # a single candidate has no non-self match

    def test_two_point_series_rejected(self):
        detector = GrammarAnomalyDetector(50, 4, 4)
        with pytest.raises(ReproError):
            detector.fit(np.array([1.0, 2.0]))

    def test_window_equals_series_length(self):
        detector = GrammarAnomalyDetector(100, 4, 4)
        result = detector.fit(np.sin(np.arange(100.0)))
        assert len(result.discretization) >= 1

    def test_pure_noise_yields_valid_output(self, rng):
        """White noise: everything is irregular; the pipeline must not
        crash and must still return internally consistent objects."""
        detector = GrammarAnomalyDetector(40, 4, 4)
        result = detector.fit(rng.normal(size=1500))
        result.grammar.verify()
        anomalies = detector.density_anomalies(max_anomalies=3)
        for anomaly in anomalies:
            assert 0 <= anomaly.start < anomaly.end <= 1500

    def test_huge_alphabet_rejected(self):
        with pytest.raises(ReproError):
            discretize(np.sin(np.arange(500.0)), 50, 4, 99)

    def test_monotonic_ramp(self):
        """A pure trend has a degenerate token stream; must not crash."""
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(np.arange(2000.0))
        assert len(result.discretization) >= 1


class TestHostileValues:
    def test_nan_series_rejected_by_streaming(self):
        detector = StreamingAnomalyDetector(20, 4, 4)
        with pytest.raises(ReproError):
            detector.push(float("nan"))

    def test_nan_tolerance_documented_offline(self):
        """Offline discretization propagates NaN into symbols rather
        than crashing — but prepare() is the supported route; this test
        pins the current (non-crashing) behaviour."""
        series = np.sin(np.arange(500.0) / 10)
        series[100] = np.nan
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(series)  # must not raise
        assert len(result.discretization) >= 1

    def test_extreme_magnitudes(self):
        """Values around 1e12 must not break the numerics."""
        t = np.arange(1000.0)
        series = 1e12 + 1e6 * np.sin(2 * np.pi * t / 100)
        series[500:550] += 3e6
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(series)
        best = detector.discords(num_discords=1).best
        assert best is not None
        assert 400 <= best.start <= 600

    def test_tiny_magnitudes_flatness(self):
        """A signal entirely below the flatness threshold is 'flat'."""
        t = np.arange(500.0)
        series = 1e-6 * np.sin(2 * np.pi * t / 50)
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(series)
        # all windows flat -> single token after reduction
        assert len(result.discretization) == 1


class TestAdversarialTokens:
    def test_unicode_tokens(self):
        grammar = induce_grammar(["α", "β", "α", "β"])
        grammar.verify()
        assert grammar.start_rule.expansion == ["α", "β", "α", "β"]

    def test_tokens_with_spaces_and_delimiters(self):
        tokens = ["a b", "a", "b", "a b", "a", "b"]
        grammar = induce_grammar(tokens)
        grammar.verify()
        assert grammar.start_rule.expansion == tokens

    def test_very_long_single_token(self):
        token = "x" * 10_000
        grammar = induce_grammar([token, "y", token, "y"])
        grammar.verify()


class TestCandidateEdgeCases:
    def test_all_candidates_overlap(self):
        """Candidates that are all mutual self-matches yield no discord."""
        from repro.grammar.intervals import RuleInterval

        series = np.sin(np.arange(200.0) / 5)
        candidates = [
            RuleInterval(1, 10, 110, usage=2),
            RuleInterval(1, 20, 120, usage=2),
        ]
        result = find_discords(series, candidates, num_discords=1)
        assert result.discords == []

    def test_candidate_beyond_series_ignored(self):
        from repro.grammar.intervals import RuleInterval

        series = np.sin(np.arange(200.0) / 5)
        candidates = [
            RuleInterval(1, 0, 50, usage=2),
            RuleInterval(1, 100, 150, usage=2),
            RuleInterval(2, 190, 400, usage=1),  # runs past the end
        ]
        result = find_discords(series, candidates, num_discords=1)
        assert result.best is not None
        assert result.best.end <= 200


class TestDeterminismUnderRepetition:
    def test_ten_runs_identical(self):
        dataset = sine_with_anomaly(length=1200, period=60, seed=21)
        outcomes = set()
        for _ in range(10):
            detector = GrammarAnomalyDetector(30, 4, 4, seed=5)
            detector.fit(dataset.series)
            best = detector.discords(num_discords=1).best
            outcomes.add((best.start, best.end, round(best.nn_distance, 12)))
        assert len(outcomes) == 1

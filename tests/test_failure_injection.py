"""Failure-injection tests: hostile inputs must fail cleanly or cope.

Production-quality requirement: no silent nonsense.  Every pathological
input either raises a :class:`~repro.exceptions.ReproError` subclass
with a useful message, or produces a well-defined degenerate result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets import sine_with_anomaly
from repro.discord.brute_force import brute_force_discords
from repro.discord.haar import haar_discords
from repro.discord.hotsax import hotsax_discords
from repro.exceptions import (
    CheckpointError,
    DataQualityError,
    DiscretizationError,
    ReproError,
)
from repro.grammar.sequitur import induce_grammar
from repro.resilience import CancellationToken, SearchBudget, SearchStatus
from repro.sax.discretize import discretize
from repro.streaming import StreamingAnomalyDetector


class TestDegenerateSeries:
    def test_constant_series_pipeline(self):
        """All-flat input: one token, trivial grammar, no discords."""
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(np.full(1000, 3.0))
        assert len(result.discretization) == 1
        rra = detector.discords(num_discords=1)
        assert rra.discords == []  # a single candidate has no non-self match

    def test_two_point_series_rejected(self):
        detector = GrammarAnomalyDetector(50, 4, 4)
        with pytest.raises(ReproError):
            detector.fit(np.array([1.0, 2.0]))

    def test_window_equals_series_length(self):
        detector = GrammarAnomalyDetector(100, 4, 4)
        result = detector.fit(np.sin(np.arange(100.0)))
        assert len(result.discretization) >= 1

    def test_pure_noise_yields_valid_output(self, rng):
        """White noise: everything is irregular; the pipeline must not
        crash and must still return internally consistent objects."""
        detector = GrammarAnomalyDetector(40, 4, 4)
        result = detector.fit(rng.normal(size=1500))
        result.grammar.verify()
        anomalies = detector.density_anomalies(max_anomalies=3)
        for anomaly in anomalies:
            assert 0 <= anomaly.start < anomaly.end <= 1500

    def test_huge_alphabet_rejected(self):
        with pytest.raises(ReproError):
            discretize(np.sin(np.arange(500.0)), 50, 4, 99)

    def test_monotonic_ramp(self):
        """A pure trend has a degenerate token stream; must not crash."""
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(np.arange(2000.0))
        assert len(result.discretization) >= 1


class TestHostileValues:
    def test_nan_series_rejected_by_streaming(self):
        detector = StreamingAnomalyDetector(20, 4, 4)
        with pytest.raises(ReproError):
            detector.push(float("nan"))

    def test_nan_rejected_offline_by_default(self):
        """NaN no longer silently propagates into SAX words: the default
        quality policy refuses dirty data and names the offending span."""
        series = np.sin(np.arange(500.0) / 10)
        series[100] = np.nan
        detector = GrammarAnomalyDetector(50, 4, 4)
        with pytest.raises(DataQualityError, match=r"\[100, 101\)"):
            detector.fit(series)

    def test_nan_rejected_by_discretize_directly(self):
        """The discretizer itself refuses non-finite input, so the gate
        cannot be bypassed by calling the lower layer."""
        series = np.sin(np.arange(500.0) / 10)
        series[42] = np.inf
        with pytest.raises(DiscretizationError, match=r"\[42, 43\)"):
            discretize(series, 50, 4, 4)

    def test_extreme_magnitudes(self):
        """Values around 1e12 must not break the numerics."""
        t = np.arange(1000.0)
        series = 1e12 + 1e6 * np.sin(2 * np.pi * t / 100)
        series[500:550] += 3e6
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(series)
        best = detector.discords(num_discords=1).best
        assert best is not None
        assert 400 <= best.start <= 600

    def test_tiny_magnitudes_flatness(self):
        """A signal entirely below the flatness threshold is 'flat'."""
        t = np.arange(500.0)
        series = 1e-6 * np.sin(2 * np.pi * t / 50)
        detector = GrammarAnomalyDetector(50, 4, 4)
        result = detector.fit(series)
        # all windows flat -> single token after reduction
        assert len(result.discretization) == 1


class TestAdversarialTokens:
    def test_unicode_tokens(self):
        grammar = induce_grammar(["α", "β", "α", "β"])
        grammar.verify()
        assert grammar.start_rule.expansion == ["α", "β", "α", "β"]

    def test_tokens_with_spaces_and_delimiters(self):
        tokens = ["a b", "a", "b", "a b", "a", "b"]
        grammar = induce_grammar(tokens)
        grammar.verify()
        assert grammar.start_rule.expansion == tokens

    def test_very_long_single_token(self):
        token = "x" * 10_000
        grammar = induce_grammar([token, "y", token, "y"])
        grammar.verify()


class TestCandidateEdgeCases:
    def test_all_candidates_overlap(self):
        """Candidates that are all mutual self-matches yield no discord."""
        from repro.grammar.intervals import RuleInterval

        series = np.sin(np.arange(200.0) / 5)
        candidates = [
            RuleInterval(1, 10, 110, usage=2),
            RuleInterval(1, 20, 120, usage=2),
        ]
        result = find_discords(series, candidates, num_discords=1)
        assert result.discords == []

    def test_candidate_beyond_series_ignored(self):
        from repro.grammar.intervals import RuleInterval

        series = np.sin(np.arange(200.0) / 5)
        candidates = [
            RuleInterval(1, 0, 50, usage=2),
            RuleInterval(1, 100, 150, usage=2),
            RuleInterval(2, 190, 400, usage=1),  # runs past the end
        ]
        result = find_discords(series, candidates, num_discords=1)
        assert result.best is not None
        assert result.best.end <= 200


def _fitted(series, window=40, paa=4, alphabet=4, backend="kernel"):
    detector = GrammarAnomalyDetector(window, paa, alphabet, backend=backend)
    fitted = detector.fit(series)
    return fitted.series, fitted.candidates


class _TripwireToken(CancellationToken):
    """Token that reports cancelled after it has been polled N times."""

    def __init__(self, after_polls: int) -> None:
        super().__init__()
        self._polls = 0
        self._after = after_polls

    @property
    def cancelled(self) -> bool:
        self._polls += 1
        return self._polls > self._after


class _InterruptingBudget(SearchBudget):
    """Budget that raises KeyboardInterrupt at its Nth boundary check.

    Emulates the user hitting Ctrl-C mid-search, at a reproducible
    point, without involving real signal delivery.
    """

    def __init__(self, at_check: int) -> None:
        super().__init__()
        self._checks = 0
        self._at = at_check

    def interrupted(self, calls):
        self._checks += 1
        if self._checks == self._at:
            raise KeyboardInterrupt
        return super().interrupted(calls)


class TestSearchBudgets:
    @pytest.mark.parametrize("backend", ["kernel", "scalar"])
    def test_rra_budget_exhaustion_returns_best_so_far(self, sine_bump, backend):
        series, candidates = _fitted(sine_bump.series, backend=backend)
        reference = find_discords(
            series, candidates, num_discords=2, backend=backend
        )
        assert reference.complete
        budget = SearchBudget(max_calls=max(1, reference.distance_calls // 3))
        starved = find_discords(
            series, candidates, num_discords=2, backend=backend, budget=budget
        )
        assert starved.status is SearchStatus.BUDGET_EXHAUSTED
        assert not starved.complete
        # best-so-far contents are still valid intervals
        for discord in starved.discords:
            assert 0 <= discord.start < discord.end <= series.size
        # truncated ranks are flagged
        assert len(starved.rank_complete) == len(starved.discords)
        assert not all(starved.rank_complete) or len(starved.discords) < 2

    @pytest.mark.parametrize("backend", ["kernel", "scalar"])
    def test_unlimited_budget_is_bit_identical(self, sine_bump, backend):
        """An unlimited budget must not perturb results or call counts."""
        series, candidates = _fitted(sine_bump.series, backend=backend)
        plain = find_discords(series, candidates, num_discords=2, backend=backend)
        budgeted = find_discords(
            series, candidates, num_discords=2, backend=backend,
            budget=SearchBudget.unlimited(),
        )
        assert budgeted.complete
        assert budgeted.discords == plain.discords
        assert budgeted.distance_calls == plain.distance_calls
        assert budgeted.rank_complete == plain.rank_complete

    def test_pre_cancelled_token_stops_immediately(self, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        token = CancellationToken()
        token.cancel()
        result = find_discords(
            series, candidates, num_discords=2,
            budget=SearchBudget(token=token),
        )
        assert result.status is SearchStatus.CANCELLED
        assert result.discords == []
        assert result.distance_calls == 0

    def test_mid_search_cancellation(self, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        result = find_discords(
            series, candidates, num_discords=2,
            budget=SearchBudget(token=_TripwireToken(after_polls=5)),
        )
        assert result.status is SearchStatus.CANCELLED
        for discord in result.discords:
            assert 0 <= discord.start < discord.end <= series.size

    def test_keyboard_interrupt_returns_best_so_far(self, sine_bump):
        """A Ctrl-C mid-scan yields a valid CANCELLED result, not a raise."""
        series, candidates = _fitted(sine_bump.series)
        result = find_discords(
            series, candidates, num_discords=2,
            budget=_InterruptingBudget(at_check=8),
        )
        assert result.status is SearchStatus.CANCELLED
        assert not result.complete
        for discord in result.discords:
            assert 0 <= discord.start < discord.end <= series.size

    def test_hotsax_budget(self, short_series):
        reference = hotsax_discords(short_series, 40, num_discords=2)
        assert reference.complete
        starved = hotsax_discords(
            short_series, 40, num_discords=2,
            budget=SearchBudget(max_calls=reference.distance_calls // 4),
        )
        assert starved.status is SearchStatus.BUDGET_EXHAUSTED
        assert starved.distance_calls < reference.distance_calls

    def test_haar_budget(self, short_series):
        starved = haar_discords(
            short_series, 40, num_discords=2, budget=SearchBudget(max_calls=50)
        )
        assert starved.status is SearchStatus.BUDGET_EXHAUSTED
        assert not starved.complete

    def test_brute_force_budget(self, short_series):
        reference = brute_force_discords(short_series, 40, num_discords=2)
        assert reference.complete
        assert reference.rank_complete == [True] * len(reference.discords)
        starved = brute_force_discords(
            short_series, 40, num_discords=2,
            budget=SearchBudget(max_calls=reference.distance_calls // 4),
        )
        assert starved.status is SearchStatus.BUDGET_EXHAUSTED
        # sequence compatibility of the result wrapper
        assert len(starved) == len(starved.discords)
        assert list(starved) == starved.discords

    def test_zero_deadline_trips_after_first_boundary(self, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        result = find_discords(
            series, candidates, num_discords=1,
            budget=SearchBudget(deadline=0.0),
        )
        assert result.status is SearchStatus.BUDGET_EXHAUSTED


class TestCheckpointResume:
    @pytest.mark.parametrize(
        "backend",
        ["kernel", pytest.param("scalar", marks=pytest.mark.slow)],
    )
    def test_resume_is_bit_identical(self, tmp_path, sine_bump, backend):
        """Interrupt + resume must equal the uninterrupted run exactly —
        discords AND total distance-call count."""
        series, candidates = _fitted(sine_bump.series, backend=backend)
        reference = find_discords(
            series, candidates, num_discords=3, backend=backend
        )
        path = str(tmp_path / "ckpt.json")
        starved = find_discords(
            series, candidates, num_discords=3, backend=backend,
            budget=SearchBudget(max_calls=max(1, reference.distance_calls // 3)),
            checkpoint_path=path, checkpoint_every=4,
        )
        assert not starved.complete
        resumed = find_discords(
            series, candidates, num_discords=3, backend=backend,
            checkpoint_path=path, resume_from=path,
        )
        assert resumed.complete
        assert resumed.discords == reference.discords
        assert resumed.distance_calls == reference.distance_calls
        assert resumed.rank_complete == reference.rank_complete

    def test_resume_rejects_different_inputs(self, tmp_path, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        path = str(tmp_path / "ckpt.json")
        find_discords(
            series, candidates, num_discords=2,
            budget=SearchBudget(max_calls=100), checkpoint_path=path,
        )
        other = series + 1.0
        with pytest.raises(CheckpointError):
            find_discords(other, candidates, num_discords=2, resume_from=path)

    def test_resume_from_completed_checkpoint(self, tmp_path, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        path = str(tmp_path / "ckpt.json")
        reference = find_discords(
            series, candidates, num_discords=2, checkpoint_path=path
        )
        resumed = find_discords(
            series, candidates, num_discords=2, resume_from=path
        )
        assert resumed.discords == reference.discords
        assert resumed.distance_calls == reference.distance_calls

    def test_corrupt_checkpoint_rejected(self, tmp_path, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            find_discords(series, candidates, resume_from=str(path))

    def test_missing_checkpoint_rejected(self, tmp_path, sine_bump):
        series, candidates = _fitted(sine_bump.series)
        with pytest.raises(CheckpointError):
            find_discords(
                series, candidates, resume_from=str(tmp_path / "absent.json")
            )


class TestQualityPolicyMatrix:
    @staticmethod
    def _dirty_series():
        series = sine_with_anomaly(length=1200, period=60, seed=3).series.copy()
        series[200:210] = np.nan  # gap far away from the planted anomaly
        return series

    @pytest.mark.parametrize("backend", ["kernel", "scalar"])
    def test_raise_policy(self, backend):
        detector = GrammarAnomalyDetector(30, 4, 4, backend=backend)
        with pytest.raises(DataQualityError, match=r"\[200, 210\)"):
            detector.fit(self._dirty_series())

    @pytest.mark.parametrize("backend", ["kernel", "scalar"])
    def test_interpolate_policy(self, backend):
        detector = GrammarAnomalyDetector(
            30, 4, 4, backend=backend, quality_policy="interpolate"
        )
        fitted = detector.fit(self._dirty_series())
        assert np.isfinite(fitted.series).all()
        assert fitted.masked_spans == ()
        assert detector.discords(num_discords=1).complete

    @pytest.mark.parametrize("backend", ["kernel", "scalar"])
    def test_mask_policy_excludes_repaired_candidates(self, backend):
        detector = GrammarAnomalyDetector(
            30, 4, 4, backend=backend, quality_policy="mask"
        )
        fitted = detector.fit(self._dirty_series())
        assert fitted.masked_spans == ((200, 210),)
        for iv in fitted.candidates:
            assert iv.end <= 200 or iv.start >= 210
        result = detector.discords(num_discords=1)
        if result.best is not None:
            assert result.best.end <= 200 or result.best.start >= 210

    def test_invalid_policy_rejected(self):
        with pytest.raises(ReproError):
            GrammarAnomalyDetector(30, 4, 4, quality_policy="ignore")


class TestGracefulDegradation:
    def test_starved_pipeline_falls_back_to_density(self, sine_bump):
        detector = GrammarAnomalyDetector(40, 4, 4)
        detector.fit(sine_bump.series)
        result = detector.discords(
            num_discords=2, budget=SearchBudget(max_calls=1)
        )
        assert not result.complete
        assert result.degraded
        assert result.fallback, "degraded result must carry density fallback"
        for anomaly in result.fallback:
            assert 0 <= anomaly.start < anomaly.end <= sine_bump.series.size

    def test_complete_search_is_not_degraded(self, sine_bump):
        detector = GrammarAnomalyDetector(40, 4, 4)
        detector.fit(sine_bump.series)
        result = detector.discords(num_discords=1)
        assert result.complete
        assert not result.degraded
        assert result.fallback == []


class TestDeterminismUnderRepetition:
    def test_ten_runs_identical(self):
        dataset = sine_with_anomaly(length=1200, period=60, seed=21)
        outcomes = set()
        for _ in range(10):
            detector = GrammarAnomalyDetector(30, 4, 4, seed=5)
            detector.fit(dataset.series)
            best = detector.discords(num_discords=1).best
            outcomes.add((best.start, best.end, round(best.nn_distance, 12)))
        assert len(outcomes) == 1

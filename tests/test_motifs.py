"""Tests for repro.core.motifs — variable-length motif discovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.motifs import Motif, find_motifs, motif_cover_fraction
from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import ecg_qtdb_0606_like, repeated_pattern
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def fitted_ecg():
    dataset = ecg_qtdb_0606_like()
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    result = detector.fit(dataset.series)
    return dataset, result


class TestFindMotifs:
    def test_motifs_exist_on_periodic_data(self, fitted_ecg):
        _, result = fitted_ecg
        motifs = find_motifs(result.grammar, result.discretization)
        assert motifs
        assert all(m.frequency >= 2 for m in motifs)

    def test_sorted_by_frequency(self, fitted_ecg):
        _, result = fitted_ecg
        motifs = find_motifs(result.grammar, result.discretization)
        freqs = [m.frequency for m in motifs]
        assert freqs == sorted(freqs, reverse=True)
        assert [m.rank for m in motifs] == list(range(len(motifs)))

    def test_top_motif_is_the_heartbeat(self, fitted_ecg):
        """The most frequent motif recurs on the order of the beat count
        and spans roughly a beat length."""
        dataset, result = fitted_ecg
        top = find_motifs(result.grammar, result.discretization, top_k=1)[0]
        beats = dataset.length // 115
        assert top.frequency >= beats // 2
        lo, hi = top.length_range
        assert lo >= 60  # at least half a beat

    def test_variable_lengths(self, fitted_ecg):
        _, result = fitted_ecg
        motifs = find_motifs(result.grammar, result.discretization, top_k=5)
        assert any(m.length_range[0] != m.length_range[1] for m in motifs)

    def test_min_length_filter(self, fitted_ecg):
        _, result = fitted_ecg
        all_motifs = find_motifs(result.grammar, result.discretization)
        long_only = find_motifs(
            result.grammar, result.discretization, min_length=200
        )
        assert len(long_only) <= len(all_motifs)
        assert all(m.mean_length >= 200 for m in long_only)

    def test_top_k(self, fitted_ecg):
        _, result = fitted_ecg
        assert len(find_motifs(result.grammar, result.discretization, top_k=3)) <= 3

    def test_invalid_min_occurrences(self, fitted_ecg):
        _, result = fitted_ecg
        with pytest.raises(ParameterError):
            find_motifs(result.grammar, result.discretization, min_occurrences=1)

    def test_motif_avoids_the_anomaly(self):
        """On the sawtooth data, the top motif's occurrences skip the
        time-reversed repetition."""
        dataset = repeated_pattern(repeats=20, anomaly_at=10, seed=3)
        detector = GrammarAnomalyDetector(
            dataset.window, dataset.paa_size, dataset.alphabet_size
        )
        result = detector.fit(dataset.series)
        top = find_motifs(result.grammar, result.discretization, top_k=1)[0]
        (a0, a1), = dataset.anomalies
        fully_inside = [
            (s, e) for s, e in top.occurrences if s >= a0 and e <= a1
        ]
        assert not fully_inside, "top motif claims the anomalous repetition"


class TestMotifType:
    def test_properties(self):
        motif = Motif(rule_id=3, occurrences=((0, 10), (20, 34)), level=2)
        assert motif.frequency == 2
        assert motif.mean_length == pytest.approx(12.0)
        assert motif.length_range == (10, 14)


class TestCoverFraction:
    def test_full_cover(self):
        motifs = [Motif(rule_id=1, occurrences=((0, 50), (50, 100)), level=1)]
        assert motif_cover_fraction(motifs, 100) == 1.0

    def test_partial_cover(self):
        motifs = [Motif(rule_id=1, occurrences=((0, 25),), level=1)]
        assert motif_cover_fraction(motifs, 100) == pytest.approx(0.25)

    def test_invalid_length(self):
        with pytest.raises(ParameterError):
            motif_cover_fraction([], 0)

    def test_high_cover_on_periodic_data(self, fitted_ecg):
        dataset, result = fitted_ecg
        motifs = find_motifs(result.grammar, result.discretization)
        assert motif_cover_fraction(motifs, dataset.length) > 0.8

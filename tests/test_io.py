"""Tests for repro.io — series/dataset/result I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly, Discord
from repro.datasets import sine_with_anomaly
from repro.exceptions import DatasetError, ReproError
from repro.io import (
    anomalies_from_json,
    anomalies_to_json,
    load_dataset,
    load_series,
    load_ucr,
    save_dataset,
    save_series,
    ucr_to_series,
)


class TestSeriesRoundTrip:
    def test_save_load(self, tmp_path, rng):
        series = rng.normal(size=200)
        path = tmp_path / "series.txt"
        save_series(path, series)
        loaded = load_series(path)
        np.testing.assert_allclose(loaded, series, rtol=1e-9)

    def test_column_selection(self, tmp_path):
        data = np.column_stack([np.arange(10.0), np.arange(10.0) * 2])
        path = tmp_path / "two.csv"
        np.savetxt(path, data, delimiter=" ")
        np.testing.assert_allclose(load_series(path, column=1),
                                   np.arange(10.0) * 2)

    def test_missing_file(self):
        with pytest.raises(ReproError):
            load_series("/nonexistent.txt")

    def test_bad_column(self, tmp_path):
        path = tmp_path / "one.txt"
        np.savetxt(path, np.arange(5.0))
        # 1-d file ignores the column argument; 2-d must validate
        data = np.column_stack([np.arange(5.0), np.arange(5.0)])
        path2 = tmp_path / "two.txt"
        np.savetxt(path2, data)
        with pytest.raises(ReproError):
            load_series(path2, column=7)

    def test_save_rejects_2d(self, tmp_path):
        with pytest.raises(ReproError):
            save_series(tmp_path / "x.txt", np.zeros((2, 2)))


class TestUCR:
    def _write(self, tmp_path, text):
        path = tmp_path / "data.ucr"
        path.write_text(text)
        return path

    def test_whitespace_rows(self, tmp_path):
        path = self._write(tmp_path, "1 0.5 0.6 0.7\n2 1.0 1.1 1.2\n")
        rows = load_ucr(path)
        assert [label for label, _ in rows] == [1, 2]
        np.testing.assert_allclose(rows[0][1], [0.5, 0.6, 0.7])

    def test_comma_rows(self, tmp_path):
        path = self._write(tmp_path, "1,0.5,0.6\n")
        rows = load_ucr(path)
        np.testing.assert_allclose(rows[0][1], [0.5, 0.6])

    def test_blank_lines_skipped(self, tmp_path):
        path = self._write(tmp_path, "1 1.0 2.0\n\n2 3.0 4.0\n")
        assert len(load_ucr(path)) == 2

    def test_malformed_row(self, tmp_path):
        path = self._write(tmp_path, "1\n")
        with pytest.raises(ReproError):
            load_ucr(path)

    def test_non_numeric(self, tmp_path):
        path = self._write(tmp_path, "1 a b\n")
        with pytest.raises(ReproError):
            load_ucr(path)

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, "")
        with pytest.raises(ReproError):
            load_ucr(path)

    def test_to_series_with_truth(self):
        rows = [
            (1, np.zeros(50)),
            (2, np.ones(30)),   # the anomalous class
            (1, np.zeros(40)),
        ]
        dataset = ucr_to_series(rows, anomalous_label=2)
        assert dataset.length == 120
        assert dataset.anomalies == [(50, 80)]

    def test_to_series_empty(self):
        with pytest.raises(DatasetError):
            ucr_to_series([])


class TestDatasetBundle:
    def test_round_trip(self, tmp_path):
        dataset = sine_with_anomaly(length=500, period=50, anomaly_start=200,
                                    anomaly_length=40, seed=5)
        path = tmp_path / "bundle.npz"
        save_dataset(path, dataset)
        loaded = load_dataset(path)
        np.testing.assert_allclose(loaded.series, dataset.series)
        assert loaded.anomalies == dataset.anomalies
        assert loaded.window == dataset.window
        assert loaded.name == dataset.name

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "not.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(ReproError):
            load_dataset(path)

    def test_load_missing(self):
        with pytest.raises(ReproError):
            load_dataset("/nonexistent.npz")


class TestAnomalyJSON:
    def test_round_trip_mixed(self):
        anomalies = [
            Discord(start=10, end=60, score=1.5, rank=0, nn_distance=1.5,
                    rule_id=3),
            Anomaly(start=100, end=120, score=0.5, rank=1, source="density"),
        ]
        payload = anomalies_to_json(anomalies)
        loaded = anomalies_from_json(payload)
        assert isinstance(loaded[0], Discord)
        assert loaded[0].nn_distance == 1.5
        assert loaded[0].rule_id == 3
        assert not isinstance(loaded[1], Discord)
        assert (loaded[1].start, loaded[1].end) == (100, 120)

    def test_invalid_json(self):
        with pytest.raises(ReproError):
            anomalies_from_json("{not json")

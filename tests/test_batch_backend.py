"""Tests for the tiled GEMM batch backend (``backend='batch'``).

Three layers are covered:

* the tile kernels — :func:`~repro.timeseries.kernels.
  all_pairs_sq_euclidean_tile` against the one-vs-all kernel and the
  scalar definition, :func:`~repro.timeseries.kernels.tile_plan`'s
  partition invariants, and the batched MINDIST tile's bit-identity to
  the one-vs-block kernel (the soundness anchor of tile-wise
  lower-bound closure);
* the window-matrix/statistics caches the engines thread through
  (``stats=`` reuse is bit-identical);
* the engines — batch vs kernel equivalence of discords and the full
  split ledger under Hypothesis-chosen tile boundaries, plus anytime
  budget and checkpoint/resume interop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discord import batch
from repro.discord.hotsax import hotsax_discords
from repro.exceptions import ParameterError
from repro.resilience.budget import SearchBudget, SearchStatus
from repro.sax.mindist import mindist_sq_one_vs_block, mindist_sq_tile
from repro.timeseries import kernels
from repro.timeseries.distance import DistanceCounter


# ---------------------------------------------------------------------------
# Tile kernels
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=24),
)
def test_tile_matches_one_vs_all_and_scalar(seed, n_queries, n_rows, width):
    """Tiled all-pairs == one-vs-all == the scalar definition to 1e-9."""
    rng = np.random.default_rng(seed)
    queries = rng.normal(size=(n_queries, width))
    matrix = rng.normal(size=(n_rows, width))
    tile = kernels.all_pairs_sq_euclidean_tile(queries, matrix)
    assert tile.shape == (n_queries, n_rows)
    assert np.all(tile >= 0.0)
    for i in range(n_queries):
        row = kernels.one_vs_all_sq_euclidean(queries[i], matrix)
        np.testing.assert_allclose(tile[i], row, atol=1e-9, rtol=0)
        scalar = np.sum((matrix - queries[i]) ** 2, axis=1)
        np.testing.assert_allclose(tile[i], scalar, atol=1e-9, rtol=0)


def test_tile_accepts_precomputed_sqnorms():
    rng = np.random.default_rng(3)
    queries = rng.normal(size=(4, 10))
    matrix = rng.normal(size=(7, 10))
    with_norms = kernels.all_pairs_sq_euclidean_tile(
        queries,
        matrix,
        query_sqnorms=kernels.row_sqnorms(queries),
        sqnorms=kernels.row_sqnorms(matrix),
    )
    np.testing.assert_array_equal(
        with_norms, kernels.all_pairs_sq_euclidean_tile(queries, matrix)
    )


def test_tile_shape_mismatch_raises():
    with pytest.raises(ParameterError, match="shape mismatch"):
        kernels.all_pairs_sq_euclidean_tile(np.zeros((2, 3)), np.zeros((2, 4)))
    with pytest.raises(ParameterError, match="shape mismatch"):
        kernels.all_pairs_sq_euclidean_tile(np.zeros(3), np.zeros((2, 3)))


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=1, max_value=1 << 22),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=64, max_value=256),
)
def test_tile_plan_partitions_exactly(n_rows, n_cols, target, min_rows, max_rows):
    """tile_plan returns a contiguous exact partition within the clamps."""
    plan = kernels.tile_plan(
        n_rows, n_cols,
        target_elems=target, min_rows=min_rows, max_rows=max_rows,
    )
    if n_rows == 0:
        assert plan == []
        return
    assert plan[0][0] == 0
    assert plan[-1][1] == n_rows
    for (lo, hi), (nlo, _) in zip(plan, plan[1:]):
        assert hi == nlo
    for lo, hi in plan:
        assert 0 < hi - lo <= max_rows
    # Every tile but the last is exactly the planned row count.
    widths = {hi - lo for lo, hi in plan[:-1]}
    assert len(widths) <= 1


def test_tile_plan_rejects_bad_arguments():
    with pytest.raises(ParameterError):
        kernels.tile_plan(-1, 10)
    with pytest.raises(ParameterError):
        kernels.tile_plan(10, 10, min_rows=0)
    with pytest.raises(ParameterError):
        kernels.tile_plan(10, 10, min_rows=8, max_rows=4)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=2, max_value=10),
)
def test_mindist_tile_bitwise_matches_one_vs_block(
    seed, n_queries, n_block, word, alpha
):
    """Per-pair bit-identity — what makes tile-wise lb closure sound."""
    rng = np.random.default_rng(seed)
    queries = rng.integers(0, alpha, size=(n_queries, word))
    block = rng.integers(0, alpha, size=(n_block, word))
    scale_sq = float(rng.uniform(0.1, 5.0))
    tile = mindist_sq_tile(queries, block, alpha, scale_sq)
    assert tile.shape == (n_queries, n_block)
    for i in range(n_queries):
        row = mindist_sq_one_vs_block(queries[i], block, alpha, scale_sq)
        np.testing.assert_array_equal(tile[i], row)


def test_mindist_tile_broadcast_form():
    """A per-query (c, b, w) block stack is accepted and matches 2-d."""
    rng = np.random.default_rng(9)
    queries = rng.integers(0, 4, size=(3, 5))
    block = rng.integers(0, 4, size=(6, 5))
    flat = mindist_sq_tile(queries, block, 4, 1.5)
    stacked = mindist_sq_tile(
        queries, np.broadcast_to(block, (3, 6, 5)), 4, 1.5
    )
    np.testing.assert_array_equal(flat, stacked)
    with pytest.raises(ValueError):
        mindist_sq_tile(queries, block[None, None], 4, 1.5)


# ---------------------------------------------------------------------------
# Window-matrix / statistics caches
# ---------------------------------------------------------------------------


def test_sliding_window_stats_reuses_prebuilt_stats():
    rng = np.random.default_rng(5)
    series = rng.normal(size=300)
    stats = kernels.SeriesStats(series)
    fresh = kernels.sliding_window_stats(series, 24)
    reused = kernels.sliding_window_stats(series, 24, stats=stats)
    np.testing.assert_array_equal(fresh[0], reused[0])
    np.testing.assert_array_equal(fresh[1], reused[1])
    np.testing.assert_array_equal(
        kernels.znorm_sliding_windows(series, 24),
        kernels.znorm_sliding_windows(series, 24, stats=stats),
    )


def test_sliding_window_stats_rejects_mismatched_stats():
    series = np.arange(100, dtype=float)
    stats = kernels.SeriesStats(np.arange(50, dtype=float))
    with pytest.raises(ParameterError, match="length"):
        kernels.sliding_window_stats(series, 10, stats=stats)


def test_window_matrix_caches_all_artifacts():
    from repro.timeseries.windows import sliding_windows
    from repro.timeseries.znorm import znorm_rows

    rng = np.random.default_rng(6)
    series = rng.normal(size=200)
    wm = kernels.WindowMatrix(series, 16)
    np.testing.assert_array_equal(wm.view, sliding_windows(series, 16))
    np.testing.assert_array_equal(
        wm.normalized, znorm_rows(sliding_windows(series, 16))
    )
    np.testing.assert_array_equal(
        wm.sqnorms, kernels.row_sqnorms(wm.normalized)
    )
    assert wm.normalized is wm.normalized  # computed once
    assert wm.sqnorms is wm.sqnorms
    means, stds = wm.window_stats()
    ref_means, ref_stds = kernels.sliding_window_stats(series, 16)
    np.testing.assert_array_equal(means, ref_means)
    np.testing.assert_array_equal(stds, ref_stds)


def test_window_matrix_rejects_degenerate_input():
    with pytest.raises(ParameterError):
        kernels.WindowMatrix(np.arange(4, dtype=float), 10)
    with pytest.raises(ParameterError):
        kernels.WindowMatrix(np.zeros((3, 3)), 2)


# ---------------------------------------------------------------------------
# Engine equivalence under arbitrary tile boundaries
# ---------------------------------------------------------------------------


def _series(seed: int, length: int = 220) -> np.ndarray:
    rng = np.random.default_rng(seed)
    series = np.sin(np.linspace(0.0, 14.0, length))
    series += 0.15 * rng.normal(size=length)
    series[length // 2 : length // 2 + 12] += 1.5
    return series


def _run_hotsax(series, backend, *, prune, budget=None, n_workers=1):
    counter = DistanceCounter()
    result = hotsax_discords(
        series, 20, num_discords=2, counter=counter,
        backend=backend, prune=prune, budget=budget, n_workers=n_workers,
    )
    # Scores are rounded as in the golden suite: the GEMM and the
    # matvec kernels may differ in the last ulp (their dot products
    # associate differently), while the trajectory — and hence the
    # ledger and the discord positions — is identical.
    return (
        counter.ledger(),
        [(d.start, d.end, round(d.score, 10)) for d in result.discords],
        result.status,
    )


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=96),
    st.booleans(),
)
def test_batch_equals_kernel_under_any_tile_rows(seed, tile_rows, prune):
    """Ledger + discords are invariant to where the tile boundaries fall."""
    series = _series(seed)
    expected = _run_hotsax(series, "kernel", prune=prune)
    old = batch.DEFAULT_TILE_ROWS
    batch.DEFAULT_TILE_ROWS = tile_rows
    try:
        got = _run_hotsax(series, "batch", prune=prune)
    finally:
        batch.DEFAULT_TILE_ROWS = old
    assert got == expected


@pytest.mark.parametrize("prune", [False, True])
def test_batch_budget_trip_matches_kernel(prune):
    """Anytime semantics: the same call budget stops both backends at the
    same boundary with the same best-so-far discords."""
    series = _series(17)
    full_calls = _run_hotsax(series, "kernel", prune=prune)[0]["calls"]
    cap = full_calls // 3
    expected = _run_hotsax(
        series, "kernel", prune=prune, budget=SearchBudget(max_calls=cap)
    )
    got = _run_hotsax(
        series, "batch", prune=prune, budget=SearchBudget(max_calls=cap)
    )
    assert got == expected
    assert got[2] is SearchStatus.BUDGET_EXHAUSTED


def test_batch_rra_checkpoint_resume_is_bit_identical(tmp_path):
    """Interrupt a batch RRA run, resume it, and match the straight run."""
    from repro.core.pipeline import GrammarAnomalyDetector
    from repro.core.rra import find_discords

    series = _series(23, length=400)
    detector = GrammarAnomalyDetector(window=24, paa_size=4, alphabet_size=4)
    intervals = detector.fit(series).candidates

    straight_counter = DistanceCounter()
    straight = find_discords(
        series, intervals, num_discords=2,
        counter=straight_counter, backend="batch", prune=True,
    )
    assert straight.complete

    cap = straight_counter.calls // 2
    path = str(tmp_path / "ckpt.json")
    first_counter = DistanceCounter()
    first = find_discords(
        series, intervals, num_discords=2, counter=first_counter,
        backend="batch", prune=True,
        budget=SearchBudget(max_calls=cap),
        checkpoint_path=path, checkpoint_every=4,
    )
    assert not first.complete

    resumed_counter = DistanceCounter()
    resumed = find_discords(
        series, intervals, num_discords=2, counter=resumed_counter,
        backend="batch", prune=True,
        checkpoint_path=path, resume_from=path, checkpoint_every=4,
    )
    assert resumed.complete
    assert resumed_counter.ledger() == straight_counter.ledger()
    assert [
        (d.start, d.end, d.score, d.rank) for d in resumed.discords
    ] == [(d.start, d.end, d.score, d.rank) for d in straight.discords]


def test_batch_checkpoints_are_not_kernel_checkpoints(tmp_path):
    """The fingerprint covers the backend: no silent cross-backend resume."""
    from repro.core.pipeline import GrammarAnomalyDetector
    from repro.core.rra import find_discords
    from repro.exceptions import CheckpointError

    series = _series(29, length=400)
    detector = GrammarAnomalyDetector(window=24, paa_size=4, alphabet_size=4)
    intervals = detector.fit(series).candidates
    path = str(tmp_path / "ckpt.json")
    find_discords(
        series, intervals, num_discords=1,
        backend="batch", checkpoint_path=path,
    )
    with pytest.raises(CheckpointError):
        find_discords(
            series, intervals, num_discords=1,
            backend="kernel", resume_from=path,
        )


def test_validate_backend_accepts_batch():
    kernels.validate_backend("batch")
    assert "batch" in kernels.BACKENDS
    with pytest.raises(ParameterError):
        kernels.validate_backend("gpu")


def test_pipeline_accepts_batch_backend():
    from repro.core.pipeline import GrammarAnomalyDetector

    series = _series(31, length=400)
    kernel = GrammarAnomalyDetector(
        window=24, paa_size=4, alphabet_size=4, backend="kernel"
    )
    batched = GrammarAnomalyDetector(
        window=24, paa_size=4, alphabet_size=4, backend="batch"
    )
    kernel.fit(series)
    batched.fit(series)
    expected = kernel.discords(num_discords=2, prune=True)
    got = batched.discords(num_discords=2, prune=True)
    assert [(d.start, d.end, d.score) for d in got.discords] == [
        (d.start, d.end, d.score) for d in expected.discords
    ]
    assert got.distance_calls == expected.distance_calls

"""Hypothesis property tests for the ensemble layer's algebra.

The ensemble's determinism story rests on four algebraic promises that
hold for *any* input, not just the golden datasets:

* aggregation is bit-invariant under member permutation — the aggregate
  never depends on which member finished first (the foundation of the
  any-worker-count guarantee);
* both normalizers are antitone in the raw density (lower density =
  less compressible = higher anomaly score), bounded in ``[0, 1]``, and
  the rank normalizer is invariant under any positive affine transform
  of the densities;
* a single-member ensemble reproduces the plain pipeline bit for bit —
  the ensemble machinery adds exactly nothing for ``m == 1``;
* members that cannot run for a given series (window too long) are
  recorded and dropped without ever raising or perturbing the
  aggregate the remaining members produce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble import (
    AGGREGATIONS,
    EnsembleDetector,
    EnsembleMember,
    aggregate_score_digest,
    aggregate_scores,
    ensemble_grid,
    normalize_density,
)
from repro.core.pipeline import GrammarAnomalyDetector

# -- strategies -----------------------------------------------------------

# Integer rule-density curves, like the real rule_density_curve output.
density_curves = st.lists(
    st.integers(min_value=0, max_value=500), min_size=2, max_size=60
).map(lambda xs: np.array(xs, dtype=float))

# Score stacks in [0, 1], shaped like normalized member curves.
score_stacks = st.integers(min_value=1, max_value=6).flatmap(
    lambda m: st.integers(min_value=1, max_value=40).flatmap(
        lambda n: st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            ),
            min_size=m,
            max_size=m,
        ).map(lambda rows: np.array(rows, dtype=float))
    )
)


# -- aggregation: permutation invariance ----------------------------------


@given(score_stacks, st.randoms(use_true_random=False))
def test_aggregation_is_permutation_invariant(stack, rnd):
    """Shuffling member rows never changes a single output bit."""
    order = list(range(stack.shape[0]))
    rnd.shuffle(order)
    shuffled = stack[order]
    for method in AGGREGATIONS:
        a = aggregate_scores(stack, method)
        b = aggregate_scores(shuffled, method)
        assert aggregate_score_digest(a) == aggregate_score_digest(b), method


@given(score_stacks)
def test_aggregation_stays_in_unit_interval(stack):
    for method in AGGREGATIONS:
        out = aggregate_scores(stack, method)
        assert out.shape == (stack.shape[1],)
        assert np.all(out >= 0.0) and np.all(out <= 1.0), method


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ).map(lambda xs: np.array(xs, dtype=float))
)
def test_single_row_mean_and_median_are_identity(row):
    """For one member, mean/median must return the row's exact bits."""
    stack = row[None, :]
    for method in ("mean", "median"):
        out = aggregate_scores(stack, method)
        assert out.tobytes() == row.tobytes(), method


# -- normalizers ----------------------------------------------------------


@given(density_curves, st.sampled_from(["minmax", "rank"]))
def test_normalizers_are_bounded_and_antitone(density, method):
    """Scores live in [0, 1] and never increase with density."""
    scores = normalize_density(density, method)
    assert scores.shape == density.shape
    assert np.all(scores >= 0.0) and np.all(scores <= 1.0)
    order = np.argsort(density)
    # Walking densities in ascending order, scores must be non-increasing.
    assert np.all(np.diff(scores[order]) <= 1e-12)
    # Equal densities must get equal scores (no positional leakage).
    for value in np.unique(density):
        tied = scores[density == value]
        assert np.all(tied == tied[0])


@given(density_curves)
def test_constant_curve_carries_no_evidence(density):
    flat = np.full_like(density, float(density[0]))
    for method in ("minmax", "rank"):
        assert not normalize_density(flat, method).any(), method


@given(
    density_curves,
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)
def test_rank_normalizer_is_affine_invariant(density, scale, shift):
    """Rank scores depend only on ordering: exact under a > 0 affine map."""
    base = normalize_density(density, "rank")
    mapped = normalize_density(density * scale + shift, "rank")
    assert base.tobytes() == mapped.tobytes()


@given(density_curves, st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
def test_minmax_normalizer_is_shift_invariant(density, shift):
    """Shifts cancel exactly in (max - d) and (max - min)."""
    base = normalize_density(density, "minmax")
    shifted = normalize_density(density + shift, "minmax")
    assert np.allclose(base, shifted, atol=1e-9)


# -- whole-detector properties (small fixed series, a few examples) -------


def _series(seed: int, length: int = 360) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / 40) + 0.05 * rng.standard_normal(length)
    series[length // 2 : length // 2 + 25] += 1.5
    return series


member_params = st.tuples(
    st.sampled_from([24, 40, 60]),
    st.sampled_from([3, 4]),
    st.sampled_from([3, 4]),
)


@settings(max_examples=8, deadline=None)
@given(member_params, st.integers(min_value=0, max_value=3))
def test_single_member_ensemble_matches_pipeline(params, seed):
    """m == 1: ensemble scores and discords are the pipeline's bits."""
    window, paa, alphabet = params
    series = _series(seed)
    member = EnsembleMember(window, paa, alphabet)
    result = EnsembleDetector([member], num_discords=2).fit(series)

    detector = GrammarAnomalyDetector(window, paa, alphabet)
    detector.fit(series)
    expected_scores = normalize_density(detector.density_curve(), "minmax")
    assert result.scores.tobytes() == expected_scores.tobytes()

    rra = detector.discords(num_discords=2)
    got = {
        (v[5], v[6], v[7]) for d in result.discords for v in d.votes
    }
    want = {(d.start, d.end, float(d.nn_distance)) for d in rra.discords}
    assert got == want
    assert all(d.support == 1 for d in result.discords)


@settings(max_examples=6, deadline=None)
@given(
    st.lists(member_params, min_size=1, max_size=4, unique=True),
    st.integers(min_value=0, max_value=3),
)
def test_invalid_members_never_raise_or_perturb(valid_params, seed):
    """Members whose window exceeds the series are dropped cleanly.

    The padded grid (valid members + impossible ones) must produce the
    same aggregate bits as the valid members alone, with the impossible
    members recorded as ``"invalid"`` — present in the ledger, absent
    from the evidence, and not enough to mark the result degraded.
    """
    series = _series(seed)
    valid = [EnsembleMember(*p) for p in valid_params]
    impossible = [
        EnsembleMember(len(series), 4, 3),
        EnsembleMember(len(series) + 100, 4, 3),
    ]
    clean = EnsembleDetector(valid, num_discords=2).fit(series)
    padded = EnsembleDetector(valid + impossible, num_discords=2).fit(series)

    assert padded.score_digest() == clean.score_digest()
    assert padded.member_counts().get("invalid", 0) == len(impossible)
    assert padded.contributing == clean.contributing == len(valid)
    assert not padded.degraded
    assert [
        (d.start, d.end, d.support) for d in padded.discords
    ] == [(d.start, d.end, d.support) for d in clean.discords]


def test_all_members_invalid_raises_parameter_error():
    from repro.exceptions import ParameterError

    series = _series(0, length=64)
    grid = ensemble_grid([128, 256], [4], [3])
    with pytest.raises(ParameterError):
        EnsembleDetector(grid).fit(series)

"""Tests for repro.grammar.repair — the Re-Pair compressor."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.repair import repair_grammar
from repro.grammar.sequitur import induce_grammar

token_seqs = st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=150)


class TestRepairBasics:
    def test_empty(self):
        grammar = repair_grammar([])
        grammar.verify()

    def test_simple_repeat(self):
        grammar = repair_grammar(list("abab"))
        grammar.verify()
        rules = grammar.non_start_rules()
        assert len(rules) == 1
        assert rules[0].expansion == ["a", "b"]

    def test_algorithm_tag(self):
        assert repair_grammar(list("abab")).algorithm == "repair"

    def test_periodic_compresses_well(self):
        grammar = repair_grammar(list("abcd" * 32))
        grammar.verify()
        assert grammar.grammar_size() <= 40

    def test_incompressible_input(self):
        tokens = [f"t{i}" for i in range(30)]
        grammar = repair_grammar(tokens)
        grammar.verify()
        assert len(grammar.non_start_rules()) == 0

    def test_run_of_identical_tokens(self):
        for run in (2, 3, 5, 9, 17):
            grammar = repair_grammar(["a"] * run)
            grammar.verify()


class TestRepairInvariants:
    @given(token_seqs)
    @settings(max_examples=120, deadline=None)
    def test_property_expansion_reproduces_input(self, tokens):
        grammar = repair_grammar(tokens)
        assert grammar.start_rule.expansion == tokens

    @given(token_seqs)
    @settings(max_examples=120, deadline=None)
    def test_property_verify_passes(self, tokens):
        repair_grammar(tokens).verify()

    @given(token_seqs)
    @settings(max_examples=120, deadline=None)
    def test_property_rule_utility(self, tokens):
        grammar = repair_grammar(tokens)
        refs: Counter = Counter()
        for rule in grammar:
            for item in rule.rhs:
                if isinstance(item, int):
                    refs[item] += 1
        for rule in grammar.non_start_rules():
            assert refs[rule.rule_id] >= 2

    @given(token_seqs)
    @settings(max_examples=60, deadline=None)
    def test_property_no_repeated_digram_in_final_sequence(self, tokens):
        """After Re-Pair terminates, no digram occurs twice in R0."""
        grammar = repair_grammar(tokens)
        rhs = grammar.start_rule.rhs
        counts: Counter = Counter()
        i = 0
        prev_key, prev_at = None, -2
        while i < len(rhs) - 1:
            key = (str(rhs[i]), str(rhs[i + 1]), type(rhs[i]).__name__,
                   type(rhs[i + 1]).__name__)
            if key == prev_key and i == prev_at + 1:
                i += 1
                continue
            counts[key] += 1
            prev_key, prev_at = key, i
            i += 1
        # NOTE: digrams may repeat across *different* rules in Re-Pair
        # (unlike Sequitur); the termination condition is only about the
        # working sequence, which ends up as R0.
        assert all(c <= 1 for c in counts.values())


class TestRepairVsSequitur:
    @given(token_seqs)
    @settings(max_examples=60, deadline=None)
    def test_property_both_reproduce_input(self, tokens):
        assert repair_grammar(tokens).start_rule.expansion == tokens
        assert induce_grammar(tokens).start_rule.expansion == tokens

    def test_sizes_comparable_on_periodic_input(self):
        tokens = list("abcabcabd" * 20)
        seq_size = induce_grammar(tokens).grammar_size()
        rep_size = repair_grammar(tokens).grammar_size()
        # Both compress; neither should be wildly worse.
        assert seq_size < len(tokens)
        assert rep_size < len(tokens)
        assert rep_size <= 2 * seq_size + 10
        assert seq_size <= 2 * rep_size + 10

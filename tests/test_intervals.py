"""Tests for repro.grammar.intervals (rule -> series interval mapping)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.intervals import (
    RuleInterval,
    rule_intervals,
    uncovered_intervals,
    zero_coverage_gaps,
)
from repro.grammar.sequitur import induce_grammar
from repro.sax.discretize import discretize


def _pipeline(series, window=40, paa=4, alpha=4):
    disc = discretize(np.asarray(series, dtype=float), window, paa, alpha)
    grammar = induce_grammar(disc.tokens())
    return disc, grammar


def _periodic_with_blip(length=800, period=50, blip_at=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.02, length)
    series[blip_at : blip_at + 60] += 2.5
    return series


class TestRuleInterval:
    def test_length(self):
        assert RuleInterval(1, 10, 25, usage=2).length == 15

    def test_overlaps(self):
        a = RuleInterval(1, 0, 10, usage=1)
        assert a.overlaps(RuleInterval(2, 5, 15, usage=1))
        assert not a.overlaps(RuleInterval(2, 10, 20, usage=1))

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            RuleInterval(1, 5, 5, usage=0)
        with pytest.raises(ValueError):
            RuleInterval(1, -1, 5, usage=0)


class TestRuleIntervals:
    def test_every_occurrence_produces_interval(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        intervals = rule_intervals(grammar, disc)
        expected = sum(r.usage for r in grammar.non_start_rules())
        assert len(intervals) == expected

    def test_start_rule_excluded_by_default(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        intervals = rule_intervals(grammar, disc)
        assert all(iv.rule_id != 0 for iv in intervals)

    def test_start_rule_included_on_request(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        intervals = rule_intervals(grammar, disc, include_start_rule=True)
        r0 = [iv for iv in intervals if iv.rule_id == 0]
        assert len(r0) == 1
        assert r0[0].start == 0
        assert r0[0].end == disc.series_length

    def test_intervals_inside_series(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        for iv in rule_intervals(grammar, disc):
            assert 0 <= iv.start < iv.end <= disc.series_length

    def test_interval_at_least_window_long(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        # each interval covers at least its last token's full window
        # (unless clipped by the series end)
        for iv in rule_intervals(grammar, disc):
            assert iv.length >= min(disc.window, disc.series_length - iv.start)

    def test_sorted_by_position(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        intervals = rule_intervals(grammar, disc)
        keys = [(iv.start, iv.end, iv.rule_id) for iv in intervals]
        assert keys == sorted(keys)

    def test_usage_matches_rule(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        for iv in rule_intervals(grammar, disc):
            assert iv.usage == grammar.rules[iv.rule_id].usage

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_property_intervals_well_formed(self, seed):
        series = _periodic_with_blip(seed=seed)
        disc, grammar = _pipeline(series)
        for iv in rule_intervals(grammar, disc):
            assert 0 <= iv.start < iv.end <= series.size
            assert iv.usage >= 2


class TestUncoveredIntervals:
    def test_anomaly_region_is_uncovered(self):
        """The planted blip's tokens form no rule -> a gap covers it."""
        series = _periodic_with_blip()
        disc, grammar = _pipeline(series)
        gaps = uncovered_intervals(grammar, disc)
        assert any(gap.start < 460 and 400 < gap.end for gap in gaps)

    def test_gap_usage_zero_and_tagged(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        for gap in uncovered_intervals(grammar, disc):
            assert gap.usage == 0
            assert gap.rule_id == -1

    def test_gaps_match_terminal_runs_in_r0(self):
        disc, grammar = _pipeline(_periodic_with_blip())
        gaps = uncovered_intervals(grammar, disc)
        terminal_runs = 0
        in_run = False
        for item in grammar.start_rule.rhs:
            if isinstance(item, str):
                if not in_run:
                    terminal_runs += 1
                    in_run = True
            else:
                in_run = False
        assert len(gaps) == terminal_runs

    def test_fully_compressed_input_has_no_gaps(self):
        # perfectly periodic, noiseless series: R0 should be all rules
        t = np.arange(640)
        series = np.sin(2 * np.pi * t / 40)
        disc, grammar = _pipeline(series, window=40)
        gaps = uncovered_intervals(grammar, disc)
        # tolerate tiny head/tail runs, but the bulk must be covered
        uncovered_points = sum(g.length for g in gaps)
        assert uncovered_points < 0.2 * series.size


class TestZeroCoverageGaps:
    def test_empty_intervals_whole_series_gap(self):
        gaps = zero_coverage_gaps([], 100)
        assert len(gaps) == 1
        assert (gaps[0].start, gaps[0].end) == (0, 100)

    def test_full_coverage_no_gaps(self):
        intervals = [RuleInterval(1, 0, 100, usage=2)]
        assert zero_coverage_gaps(intervals, 100) == []

    def test_gap_between_intervals(self):
        intervals = [
            RuleInterval(1, 0, 40, usage=2),
            RuleInterval(2, 60, 100, usage=2),
        ]
        gaps = zero_coverage_gaps(intervals, 100)
        assert [(g.start, g.end) for g in gaps] == [(40, 60)]

    def test_min_length_filter(self):
        intervals = [
            RuleInterval(1, 0, 50, usage=2),
            RuleInterval(2, 51, 100, usage=2),
        ]
        assert zero_coverage_gaps(intervals, 100, min_length=2) == []
        gaps = zero_coverage_gaps(intervals, 100, min_length=1)
        assert [(g.start, g.end) for g in gaps] == [(50, 51)]

    def test_consistent_with_density_zero(self):
        from repro.core.rule_density import rule_density_curve

        series = _periodic_with_blip()
        disc, grammar = _pipeline(series)
        intervals = rule_intervals(grammar, disc)
        gaps = zero_coverage_gaps(intervals, series.size, min_length=1)
        curve = rule_density_curve(intervals, series.size)
        for gap in gaps:
            assert (curve[gap.start : gap.end] == 0).all()

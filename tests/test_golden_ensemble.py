"""Golden regression suite for the ensemble layer.

The ensemble promise is stronger than any single member's: the
*aggregate* anomaly-score curve and the merged, ranked ensemble
discords must be bit-identical for any worker count and any cold/warm
cache state, because members are always combined in canonical grid
order.  This suite pins the aggregate-curve SHA-256 digest, the top
ensemble discords (with their member support), and the stable member
ledger for a small matrix of (dataset, normalization, aggregation)
configurations against the checked-in ``tests/golden/ensemble_scores.json``.

Each golden entry is keyed by ``dataset/normalization/aggregation``
only: the serial run and the ``n_workers=2`` run must BOTH reproduce
the same entry, which asserts the parallel bit-identity guarantee
directly rather than pinning separate parallel numbers.  The same
entry must also come back from a warm per-member result cache.

The ledger counts pinned here are the *stable* ones —
``members`` / ``contributing`` / ``degraded`` — not per-status tallies:
a cold run reports members as ``ok`` while a warm run reports them as
``cached``, and both must hash to the same golden entry.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/test_golden_ensemble.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.ensemble import EnsembleDetector, ensemble_grid
from repro.datasets import synthetic_ecg
from repro.datasets.synthetic import sine_with_anomaly

GOLDEN_PATH = Path(__file__).parent / "golden" / "ensemble_scores.json"
GOLDEN_FORMAT = "repro-golden-ensemble/1"

# Two seeded bundled datasets with compact member grids: small enough
# that the full matrix stays inside the tier-1 time budget, big enough
# that normalization and merging do non-trivial work (distinct window
# scales, overlapping candidate discords).
DATASETS = {
    "sine": dict(kind="sine", length=1200, period=100, seed=7),
    "ecg": dict(kind="ecg", num_beats=8, anomaly_beats=(5,), seed=3),
}
GRIDS = {
    "sine": ([60, 100], [4, 6], [3, 5]),
    "ecg": ([80, 120], [4, 6], [3, 4]),
}
CONFIGS = (
    ("minmax", "mean"),
    ("rank", "median"),
    ("minmax", "vote"),
)
NUM_DISCORDS = 2
TOP_K = 3


def _load_dataset(name: str):
    spec = DATASETS[name]
    if spec["kind"] == "sine":
        return sine_with_anomaly(
            length=spec["length"], period=spec["period"], seed=spec["seed"]
        )
    return synthetic_ecg(
        num_beats=spec["num_beats"],
        anomaly_beats=spec["anomaly_beats"],
        seed=spec["seed"],
    )


def run_ensemble(
    name: str, dataset, normalization: str, aggregation: str,
    *, n_workers: int = 1, cache=None,
):
    """Run one configuration; return its golden entry.

    The entry pins the aggregate curve by digest (the full curve is too
    large to check in), the top-``TOP_K`` merged discords with their
    member support, and the stable ledger counts.
    """
    detector = EnsembleDetector(
        ensemble_grid(*GRIDS[name]),
        normalization=normalization,
        aggregation=aggregation,
        num_discords=NUM_DISCORDS,
        n_workers=n_workers,
        cache=cache,
    )
    result = detector.fit(dataset.series)
    return {
        "score_digest": result.score_digest(),
        "discords": [
            [d.start, d.end, d.support, float(np.round(d.score, 10))]
            for d in result.discords[:TOP_K]
        ],
        "members": len(result.members),
        "contributing": result.contributing,
        "degraded": result.degraded,
    }


def _entry_key(dataset: str, normalization: str, aggregation: str) -> str:
    return f"{dataset}/{normalization}/{aggregation}"


def _golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        data = json.load(fh)
    assert data["format"] == GOLDEN_FORMAT
    return data


CASES = [
    (ds, norm, agg) for ds in DATASETS for norm, agg in CONFIGS
]


@pytest.fixture(scope="module")
def golden():
    return _golden()


@pytest.fixture(scope="module")
def datasets():
    return {name: _load_dataset(name) for name in DATASETS}


@pytest.mark.parametrize(
    "dataset_name, normalization, aggregation",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_serial_ensemble_matches_golden(
    golden, datasets, dataset_name, normalization, aggregation
):
    key = _entry_key(dataset_name, normalization, aggregation)
    entry = run_ensemble(
        dataset_name, datasets[dataset_name], normalization, aggregation
    )
    assert entry == golden["entries"][key], key


@pytest.mark.slow
@pytest.mark.parametrize(
    "dataset_name, normalization, aggregation",
    CASES,
    ids=[_entry_key(*case) for case in CASES],
)
def test_parallel_ensemble_matches_golden(
    golden, datasets, dataset_name, normalization, aggregation
):
    """n_workers=2 must reproduce the SAME golden entry as the serial run."""
    key = _entry_key(dataset_name, normalization, aggregation)
    entry = run_ensemble(
        dataset_name,
        datasets[dataset_name],
        normalization,
        aggregation,
        n_workers=2,
    )
    assert entry == golden["entries"][key], key


@pytest.mark.parametrize(
    "dataset_name, normalization, aggregation",
    [CASES[0], CASES[3]],
    ids=[_entry_key(*CASES[0]), _entry_key(*CASES[3])],
)
def test_cached_ensemble_matches_golden(
    golden, datasets, dataset_name, normalization, aggregation, tmp_path
):
    """A warm per-member cache must reproduce the SAME golden entry.

    The cold run populates one store entry per member; the warm run is
    answered entirely from the store (asserted via the hit tally) and
    must reproduce the identical digest, discords, and stable counts.
    """
    from repro.cache import ResultCache

    key = _entry_key(dataset_name, normalization, aggregation)
    cache = ResultCache(tmp_path / "store")
    cold = run_ensemble(
        dataset_name, datasets[dataset_name], normalization, aggregation,
        cache=cache,
    )
    assert cold == golden["entries"][key], key
    warm = run_ensemble(
        dataset_name, datasets[dataset_name], normalization, aggregation,
        cache=cache,
    )
    assert warm == golden["entries"][key], key
    assert cache.hits == cold["members"], key
    assert cache.misses == cold["members"], key


def test_golden_file_covers_every_case(golden):
    expected = {_entry_key(*case) for case in CASES}
    assert set(golden["entries"]) == expected


def test_no_golden_entry_is_degraded(golden):
    """Unbudgeted full-grid runs must never record a degraded aggregate."""
    for key, entry in golden["entries"].items():
        assert entry["degraded"] is False, key
        assert entry["contributing"] == entry["members"], key


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    entries = {}
    for name in DATASETS:
        dataset = _load_dataset(name)
        for normalization, aggregation in CONFIGS:
            key = _entry_key(name, normalization, aggregation)
            entries[key] = run_ensemble(
                name, dataset, normalization, aggregation
            )
            print(key, entries[key]["score_digest"][:16], entries[key]["discords"])
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": GOLDEN_FORMAT,
        "datasets": {k: {**v, "anomaly_beats": list(v.get("anomaly_beats", []))}
                     if "anomaly_beats" in v else v
                     for k, v in DATASETS.items()},
        "grids": {k: list(map(list, v)) for k, v in GRIDS.items()},
        "num_discords": NUM_DISCORDS,
        "top_k": TOP_K,
        "entries": entries,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)

"""Tests for repro.streaming — the online detection subsystem."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CheckpointError, DataQualityError, ParameterError
from repro.grammar.sequitur import induce_grammar
from repro.sax.discretize import NumerosityReduction, discretize
from repro.streaming import (
    IncrementalSequitur,
    OnlineDiscretizer,
    StreamingAnomalyDetector,
)
from repro.streaming.window_stats import RollingStats


def _bump_series(length=2000, period=100, at=1000, width=100, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.03, length)
    series[at : at + width] += 2.0
    return series


class TestRollingStats:
    def test_mean_and_std_match_numpy(self, rng):
        stats = RollingStats(window=16)
        values = rng.normal(5.0, 2.0, 100)
        for i, value in enumerate(values):
            stats.push(value)
            tail = values[max(0, i - 15) : i + 1]
            assert stats.mean == pytest.approx(tail.mean(), abs=1e-9)
            assert stats.std == pytest.approx(tail.std(), abs=1e-9)

    def test_full_flag(self):
        stats = RollingStats(window=3)
        for i, expect_full in [(1, False), (2, False), (3, True), (4, True)]:
            stats.push(float(i))
            assert stats.full is expect_full

    def test_values_order(self):
        stats = RollingStats(window=3)
        for value in [1.0, 2.0, 3.0, 4.0]:
            stats.push(value)
        np.testing.assert_array_equal(stats.values(), [2.0, 3.0, 4.0])

    def test_rejects_nan(self):
        stats = RollingStats(window=4)
        with pytest.raises(ParameterError):
            stats.push(float("nan"))

    def test_empty_queries_rejected(self):
        stats = RollingStats(window=4)
        with pytest.raises(ParameterError):
            _ = stats.mean

    def test_invalid_window(self):
        with pytest.raises(ParameterError):
            RollingStats(window=0)

    def test_drift_resync(self, rng):
        """After many updates the running sums stay numerically exact."""
        stats = RollingStats(window=8)
        values = rng.normal(1e6, 1.0, 10_000)  # large offset stresses drift
        for value in values:
            stats.push(value)
        tail = values[-8:]
        assert stats.mean == pytest.approx(tail.mean(), rel=1e-12)
        assert stats.std == pytest.approx(tail.std(), rel=1e-6)


class TestOnlineDiscretizer:
    @pytest.mark.parametrize(
        "strategy",
        [NumerosityReduction.NONE, NumerosityReduction.EXACT,
         NumerosityReduction.MINDIST],
    )
    def test_matches_offline_discretize(self, strategy):
        """The streaming pipeline emits exactly the offline token stream."""
        series = _bump_series()
        offline = discretize(series, 50, 4, 4, strategy=strategy)
        online = OnlineDiscretizer(50, 4, 4, strategy=strategy)
        emitted = [w for w in (online.push(v) for v in series) if w is not None]
        assert [(w.word, w.offset) for w in offline.words] == [
            (w.word, w.offset) for w in emitted
        ]

    def test_nothing_before_window_fills(self):
        online = OnlineDiscretizer(10, 2, 3)
        for i in range(9):
            assert online.push(float(i)) is None
        assert online.push(9.0) is not None

    def test_counters(self):
        series = _bump_series(length=500)
        online = OnlineDiscretizer(50, 4, 4)
        for value in series:
            online.push(value)
        assert online.raw_word_count == 500 - 50 + 1
        assert 0 < online.emitted_count <= online.raw_word_count
        assert online.position == 500

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            OnlineDiscretizer(1, 1, 3)
        with pytest.raises(ParameterError):
            OnlineDiscretizer(10, 20, 3)

    @given(
        st.integers(0, 10_000),
        st.integers(8, 40),
        st.integers(2, 6),
        st.integers(3, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_online_equals_offline(self, seed, window, paa, alpha):
        """For arbitrary noisy periodic series and parameters, the
        streaming discretizer's token stream is byte-identical to the
        offline one."""
        if paa > window:
            return
        rng = np.random.default_rng(seed)
        t = np.arange(300)
        series = (
            np.sin(2 * np.pi * t / (window + 7))
            + rng.normal(0, 0.2, 300)
        )
        offline = discretize(series, window, paa, alpha)
        online = OnlineDiscretizer(window, paa, alpha)
        emitted = [w for w in (online.push(v) for v in series) if w is not None]
        assert [(w.word, w.offset) for w in offline.words] == [
            (w.word, w.offset) for w in emitted
        ]


class TestIncrementalSequitur:
    def test_snapshot_matches_offline(self):
        tokens = "ab cd ab cd ef ab cd".split()
        inc = IncrementalSequitur()
        inc.push_many(tokens)
        online = inc.snapshot()
        offline = induce_grammar(tokens)
        assert online.start_rule.expansion == offline.start_rule.expansion
        assert online.grammar_size() == offline.grammar_size()

    def test_snapshot_is_non_destructive(self):
        inc = IncrementalSequitur()
        inc.push_many(list("abab"))
        first = inc.snapshot()
        inc.push_many(list("abab"))
        second = inc.snapshot()
        first.verify()
        second.verify()
        assert second.start_rule.expansion == list("abababab")

    def test_uncovered_token_runs_match_snapshot(self):
        tokens = "ab ab xx yy ab ab".split()
        inc = IncrementalSequitur()
        inc.push_many(tokens)
        runs = inc.uncovered_token_runs()
        grammar = inc.snapshot()
        # recompute runs from the frozen start rule
        expected = []
        pos = 0
        run = None
        for item in grammar.start_rule.rhs:
            if isinstance(item, int):
                if run is not None:
                    expected.append((run, pos - 1))
                    run = None
                pos += grammar.rules[item].expansion_length
            else:
                if run is None:
                    run = pos
                pos += 1
        if run is not None:
            expected.append((run, pos - 1))
        assert runs == expected
        # and the anomalous tokens are inside some run
        assert any(first <= 2 <= last for first, last in runs)
        assert any(first <= 3 <= last for first, last in runs)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_property_incremental_equals_offline(self, tokens):
        inc = IncrementalSequitur()
        inc.push_many(tokens)
        snapshot = inc.snapshot()
        snapshot.verify()
        assert snapshot.start_rule.expansion == tokens

    def test_counts(self):
        inc = IncrementalSequitur()
        inc.push_many(list("abab"))
        assert inc.token_count == 4
        assert inc.rule_count >= 2  # R0 + the ab rule
        assert inc.tokens() == list("abab")


class TestStreamingAnomalyDetector:
    def test_detects_planted_bump(self):
        series = _bump_series()
        detector = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
        alarms = detector.push_many(series) + detector.flush()
        assert any(a.start < 1150 and 950 < a.end for a in alarms), (
            f"no alarm near the bump: {[(a.start, a.end) for a in alarms]}"
        )

    def test_no_alarms_on_clean_periodic_data(self):
        t = np.arange(3000)
        series = np.sin(2 * np.pi * t / 100)
        detector = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
        alarms = detector.push_many(series)
        assert alarms == [], f"false alarms: {[(a.start, a.end) for a in alarms]}"

    def test_alarm_fires_before_stream_end(self):
        """Early detection: the alarm fires long before the data ends."""
        series = _bump_series(length=4000, at=1000)
        detector = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
        alarms = detector.push_many(series)
        hits = [a for a in alarms if a.start < 1150 and 950 < a.end]
        assert hits
        assert hits[0].detected_at < 2000  # well before the stream ends
        assert hits[0].delay < 900

    def test_no_duplicate_alarms(self):
        series = _bump_series()
        detector = StreamingAnomalyDetector(50, 4, 4)
        alarms = detector.push_many(series) + detector.flush()
        spans = [(a.first_token, a.last_token) for a in alarms]
        assert len(set(spans)) == len(spans)
        # and no two alarms overlap in token space
        for i in range(len(spans)):
            for j in range(i + 1, len(spans)):
                a, b = spans[i], spans[j]
                assert a[1] < b[0] or b[1] < a[0]

    def test_matches_offline_gap_semantics(self):
        """flush() reports exactly the offline uncovered token runs
        (of sufficient length)."""
        series = _bump_series()
        detector = StreamingAnomalyDetector(
            50, 4, 4, confirmation_tokens=10_000  # never mature in-stream
        )
        in_stream = detector.push_many(series)
        assert in_stream == []
        final = detector.flush()
        grammar = detector.grammar_snapshot()
        offline_runs = []
        pos = 0
        run = None
        for item in grammar.start_rule.rhs:
            if isinstance(item, int):
                if run is not None:
                    offline_runs.append((run, pos - 1))
                    run = None
                pos += grammar.rules[item].expansion_length
            else:
                if run is None:
                    run = pos
                pos += 1
        if run is not None:
            offline_runs.append((run, pos - 1))
        expected = [(f, l) for f, l in offline_runs if l - f + 1 >= 2]
        assert [(a.first_token, a.last_token) for a in final] == expected

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=0)
        with pytest.raises(ParameterError):
            StreamingAnomalyDetector(50, 4, 4, check_every=0)
        with pytest.raises(ParameterError):
            StreamingAnomalyDetector(50, 4, 4, min_run_tokens=0)

    def test_counters(self):
        series = _bump_series(length=600)
        detector = StreamingAnomalyDetector(50, 4, 4)
        detector.push_many(series)
        assert detector.points_consumed == 600
        assert detector.tokens_emitted > 0


class TestSnapshotRestore:
    def test_snapshot_restore_continues_identically(self):
        """Snapshot mid-stream, restore, and finish: same alarms, same
        counters as an uninterrupted run."""
        series = _bump_series()
        reference = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
        ref_alarms = reference.push_many(series)

        first = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
        head = first.push_many(series[:1100])
        snapshot = json.loads(json.dumps(first.snapshot()))  # JSON round-trip
        second = StreamingAnomalyDetector.restore(snapshot)
        tail = second.push_many(series[1100:])

        assert [
            (a.start, a.end, a.first_token, a.last_token, a.detected_at)
            for a in head + tail
        ] == [
            (a.start, a.end, a.first_token, a.last_token, a.detected_at)
            for a in ref_alarms
        ]
        assert second.points_consumed == reference.points_consumed
        assert second.tokens_emitted == reference.tokens_emitted
        assert [
            (a.first_token, a.last_token) for a in second.flush()
        ] == [(a.first_token, a.last_token) for a in reference.flush()]

    def test_snapshot_preserves_reported_set(self):
        """Alarms already reported before the snapshot are not re-raised
        by the restored detector."""
        series = _bump_series()
        detector = StreamingAnomalyDetector(50, 4, 4, confirmation_tokens=20)
        alarms = detector.push_many(series)
        assert alarms  # the bump fired before end of stream
        restored = StreamingAnomalyDetector.restore(detector.snapshot())
        # replaying a quiet continuation produces no duplicate alarm
        quiet = np.sin(2 * np.pi * np.arange(2000, 2500) / 100)
        assert restored.push_many(quiet) == []

    def test_restore_rejects_wrong_format(self):
        with pytest.raises(CheckpointError):
            StreamingAnomalyDetector.restore({"format": "something-else"})

    def test_restore_rejects_malformed_document(self):
        detector = StreamingAnomalyDetector(50, 4, 4)
        snapshot = detector.snapshot()
        del snapshot["discretizer"]
        with pytest.raises(CheckpointError):
            StreamingAnomalyDetector.restore(snapshot)

    def test_discretizer_state_roundtrip_is_exact(self):
        source = OnlineDiscretizer(window=8, paa_size=4, alphabet_size=4)
        values = _bump_series(length=500)
        for value in values[:300]:
            source.push(value)
        clone = OnlineDiscretizer(window=8, paa_size=4, alphabet_size=4)
        clone.load_state(json.loads(json.dumps(source.state_dict())))
        for value in values[300:]:
            assert source.push(value) == clone.push(value)

    def test_discretizer_state_param_mismatch(self):
        source = OnlineDiscretizer(window=8, paa_size=4, alphabet_size=4)
        other = OnlineDiscretizer(window=16, paa_size=4, alphabet_size=4)
        with pytest.raises(CheckpointError):
            other.load_state(source.state_dict())


class TestNonfinitePolicy:
    def test_default_raises(self):
        detector = StreamingAnomalyDetector(20, 4, 4)
        with pytest.raises(DataQualityError, match="nonfinite_policy"):
            detector.push(float("inf"))

    def test_skip_policy_drops_and_counts(self):
        series = _bump_series(length=800)
        dirty = series.copy()
        dirty[100] = np.nan
        dirty[300] = np.inf
        dirty[301] = -np.inf
        clean_detector = StreamingAnomalyDetector(
            50, 4, 4, confirmation_tokens=20
        )
        skip_detector = StreamingAnomalyDetector(
            50, 4, 4, confirmation_tokens=20, nonfinite_policy="skip"
        )
        clean_reference = np.delete(series, [100, 300, 301])
        clean_alarms = clean_detector.push_many(clean_reference)
        dirty_alarms = skip_detector.push_many(dirty)
        assert skip_detector.dropped_points == 3
        # a skipped point is as if it never arrived: identical to feeding
        # the compacted series
        assert [(a.first_token, a.last_token) for a in dirty_alarms] == [
            (a.first_token, a.last_token) for a in clean_alarms
        ]
        assert skip_detector.points_consumed == clean_detector.points_consumed

    def test_invalid_policy_rejected(self):
        with pytest.raises(ParameterError):
            StreamingAnomalyDetector(20, 4, 4, nonfinite_policy="quietly")

"""Unit tests for repro.resilience — budgets, tokens, checkpoints."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.exceptions import CheckpointError, ParameterError
from repro.resilience import (
    CHECKPOINT_FORMAT,
    CancellationToken,
    SearchBudget,
    SearchStatus,
    load_checkpoint,
    restore_rng,
    rng_state_to_json,
    save_checkpoint,
    search_fingerprint,
)


class TestSearchBudget:
    def test_unlimited_never_trips(self):
        budget = SearchBudget.unlimited()
        assert not budget.limited
        for calls in (0, 10**9):
            assert budget.interrupted(calls) is None
        assert budget.status is SearchStatus.COMPLETE

    def test_max_calls_trips_and_sticks(self):
        budget = SearchBudget(max_calls=100)
        assert budget.limited
        assert budget.interrupted(99) is None
        assert budget.interrupted(100) is SearchStatus.BUDGET_EXHAUSTED
        # sticky: later checks report the same status even for low calls
        assert budget.interrupted(0) is SearchStatus.BUDGET_EXHAUSTED
        assert budget.status is SearchStatus.BUDGET_EXHAUSTED

    def test_deadline_measured_from_first_check(self):
        budget = SearchBudget(deadline=3600.0)
        # first check arms the deadline; a fresh one never trips instantly
        assert budget.interrupted(0) is None
        assert budget.interrupted(0) is None

    def test_zero_deadline_trips_on_second_check(self):
        budget = SearchBudget(deadline=0.0)
        assert budget.interrupted(0) is None  # arms
        assert budget.interrupted(0) is SearchStatus.BUDGET_EXHAUSTED

    def test_token_cancellation(self):
        token = CancellationToken()
        budget = SearchBudget(token=token)
        assert budget.interrupted(0) is None
        token.cancel()
        assert budget.interrupted(0) is SearchStatus.CANCELLED

    def test_note_cancelled(self):
        budget = SearchBudget.unlimited()
        budget.note_cancelled()
        assert budget.status is SearchStatus.CANCELLED
        assert budget.interrupted(0) is SearchStatus.CANCELLED

    def test_invalid_arguments(self):
        with pytest.raises(ParameterError):
            SearchBudget(deadline=-1.0)
        with pytest.raises(ParameterError):
            SearchBudget(max_calls=-1)


class TestRngRoundtrip:
    def test_state_roundtrip_through_json(self):
        rng = np.random.default_rng(42)
        rng.permutation(100)  # advance past the seed state
        clone = restore_rng(json.loads(json.dumps(rng_state_to_json(rng))))
        assert np.array_equal(rng.permutation(50), clone.permutation(50))
        assert rng.random() == clone.random()

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(CheckpointError):
            restore_rng({"bit_generator": "NoSuchGenerator", "state": {}})

    def test_malformed_state_rejected(self):
        with pytest.raises(CheckpointError):
            restore_rng({"bit_generator": "PCG64", "state": {"bogus": 1}})


class TestFingerprint:
    class _Interval:
        def __init__(self, rule_id, start, end, usage):
            self.rule_id, self.start, self.end, self.usage = (
                rule_id, start, end, usage,
            )

    def test_sensitive_to_every_input(self):
        series = np.sin(np.arange(100.0))
        intervals = [self._Interval(1, 0, 10, 2)]
        params = {"num_discords": 2, "backend": "kernel"}
        base = search_fingerprint(series, intervals, params)
        assert search_fingerprint(series, intervals, params) == base
        assert search_fingerprint(series + 1e-9, intervals, params) != base
        assert (
            search_fingerprint(series, [self._Interval(1, 0, 11, 2)], params)
            != base
        )
        assert (
            search_fingerprint(series, intervals, {**params, "backend": "scalar"})
            != base
        )


class TestCheckpointPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, {"rank": 1, "best_dist": 2.5})
        data = load_checkpoint(path)
        assert data["format"] == CHECKPOINT_FORMAT
        assert data["rank"] == 1
        assert data["best_dist"] == 2.5

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        for i in range(3):
            save_checkpoint(path, {"rank": i})
        assert sorted(os.listdir(tmp_path)) == ["ckpt.json"]
        assert load_checkpoint(path)["rank"] == 2

    def test_load_rejects_non_checkpoint_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.json"))

"""End-to-end integration tests reproducing the paper's headline claims.

Each test runs the full pipeline (SAX -> Sequitur -> density/RRA) on a
synthetic stand-in dataset and checks the paper-level behaviour: both
detectors recover the planted anomaly, RRA uses far fewer distance calls
than HOTSAX, HOTSAX far fewer than brute force, and discords have
variable lengths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets import (
    commute_trail,
    dutch_power_demand_like,
    ecg_qtdb_0606_like,
    respiration_like,
    tek_like,
    video_gun_like,
)
from repro.discord.brute_force import brute_force_call_count
from repro.discord.hotsax import hotsax_discords


def _fit(dataset):
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    detector.fit(dataset.series)
    return detector


@pytest.fixture(scope="module")
def ecg():
    return ecg_qtdb_0606_like()


@pytest.fixture(scope="module")
def video():
    return video_gun_like(num_cycles=12, anomaly_cycles=(6,))


@pytest.fixture(scope="module")
def power():
    return dutch_power_demand_like(weeks=10, holiday_weeks=((4, 2), (6, 0), (8, 3)))


class TestAnomalyRecovery:
    """Both algorithms find the planted anomaly on every dataset family."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ecg_qtdb_0606_like(),
            lambda: video_gun_like(num_cycles=12, anomaly_cycles=(6,)),
            lambda: tek_like("TEK14"),
            lambda: tek_like("TEK16", seed=16),
            lambda: tek_like("TEK17", seed=17),
            lambda: respiration_like(),
        ],
        ids=["ecg", "video", "tek14", "tek16", "tek17", "respiration"],
    )
    def test_density_and_rra_hit(self, factory):
        dataset = factory()
        detector = _fit(dataset)
        density = detector.density_anomalies(max_anomalies=3)
        assert any(
            dataset.contains_hit(a.start, a.end, min_overlap=0.3) for a in density
        ), "density detector missed the planted anomaly"
        best = detector.discords(num_discords=1).best
        assert best is not None
        assert dataset.contains_hit(best.start, best.end, min_overlap=0.3), (
            f"RRA missed: reported ({best.start}, {best.end}), "
            f"truth {dataset.anomalies}"
        )


class TestEfficiencyOrdering:
    """Table 1's shape: RRA calls << HOTSAX calls << brute-force calls."""

    def test_ecg_distance_call_ordering(self, ecg):
        detector = _fit(ecg)
        rra = detector.discords(num_discords=1)
        hotsax = hotsax_discords(ecg.series, ecg.window, num_discords=1)
        brute = brute_force_call_count(ecg.length, ecg.window)
        assert rra.distance_calls < hotsax.distance_calls < brute
        # the paper's reductions are 49-97%; require at least 2x here
        assert rra.distance_calls * 2 < hotsax.distance_calls

    def test_video_distance_call_ordering(self, video):
        detector = _fit(video)
        rra = detector.discords(num_discords=1)
        hotsax = hotsax_discords(
            video.series, video.window, num_discords=1,
            paa_size=video.paa_size, alphabet_size=video.alphabet_size,
        )
        brute = brute_force_call_count(video.length, video.window)
        assert rra.distance_calls < hotsax.distance_calls < brute


class TestVariableLengthDiscords:
    """RRA discords vary in length and are not bounded by the window."""

    def test_discord_lengths_differ(self, video):
        detector = _fit(video)
        result = detector.discords(num_discords=3)
        lengths = {d.length for d in result.discords}
        assert len(lengths) >= 2, f"all discords same length: {lengths}"

    def test_discord_longer_than_window_possible(self, power):
        detector = _fit(power)
        result = detector.discords(num_discords=3)
        assert any(d.length != power.window for d in result.discords)


class TestMultipleDiscords:
    """Figure 3: iterated RRA finds several co-existing anomalies."""

    def test_power_demand_top3_hit_distinct_holidays(self, power):
        detector = _fit(power)
        result = detector.discords(num_discords=3)
        assert len(result.discords) == 3
        hits = sum(
            power.contains_hit(d.start, d.end, min_overlap=0.2)
            for d in result.discords
        )
        assert hits >= 2, "fewer than 2 of top-3 discords are true holidays"


class TestRuleDensityShape:
    """Figure 2: the density curve dips at the true anomaly."""

    def test_density_minimum_near_truth(self, ecg):
        detector = _fit(ecg)
        curve = detector.density_curve().astype(float)
        w = ecg.window
        interior = curve[w:-w]
        argmin = int(np.argmin(interior)) + w
        (t0, t1), = ecg.anomalies
        assert t0 - w <= argmin <= t1 + w

    def test_anomaly_region_below_average(self, video):
        detector = _fit(video)
        curve = detector.density_curve().astype(float)
        (t0, t1), = video.anomalies
        assert curve[t0:t1].mean() < 0.6 * curve.mean()


class TestTrajectoryCaseStudy:
    """Figure 7: density finds the detour, RRA the GPS-loss segment."""

    @pytest.fixture(scope="class")
    def study(self):
        trail = commute_trail(num_trips=10, detour_trip=7, gps_loss_trip=4)
        detector = GrammarAnomalyDetector(
            trail.dataset.window, trail.dataset.paa_size,
            trail.dataset.alphabet_size,
        )
        detector.fit(trail.dataset.series)
        return trail, detector

    def test_density_finds_detour(self, study):
        trail, detector = study
        d0, d1 = trail.detour_interval
        anomalies = detector.density_anomalies(max_anomalies=3)
        assert any(a.start < d1 and d0 < a.end for a in anomalies)

    def test_rra_finds_gps_loss(self, study):
        trail, detector = study
        g0, g1 = trail.gps_loss_interval
        result = detector.discords(num_discords=2)
        assert any(d.start < g1 and g0 < d.end for d in result.discords)


class TestCompressorAgnostic:
    """The pipeline also works with Re-Pair as the compressor."""

    def test_repair_backend_recovers_anomaly(self, ecg):
        detector = GrammarAnomalyDetector(
            ecg.window, ecg.paa_size, ecg.alphabet_size,
            grammar_algorithm="repair",
        )
        detector.fit(ecg.series)
        best = detector.discords(num_discords=1).best
        assert best is not None
        assert ecg.contains_hit(best.start, best.end, min_overlap=0.3)


class TestGapCandidatesMatter:
    """Ablation guard: without frequency-0 gap candidates RRA can miss
    anomalies entirely (anomalous tokens form no rules by definition)."""

    def test_gap_candidates_cover_anomaly(self, ecg):
        detector = _fit(ecg)
        result = detector.result
        (t0, t1), = ecg.anomalies
        covering_gaps = [
            g for g in result.gaps if g.start < t1 and t0 < g.end
        ]
        covering_rules = [
            iv for iv in result.intervals if iv.start < t1 and t0 < iv.end
        ]
        # the anomaly is reachable through gaps or (weakly) through rules,
        # and at least one frequency-0 gap touches it
        assert covering_gaps, "no zero-frequency candidate touches the anomaly"
        rra_with_gaps = find_discords(
            result.series, result.candidates, num_discords=1
        )
        assert ecg.contains_hit(
            rra_with_gaps.best.start, rra_with_gaps.best.end, min_overlap=0.3
        )

"""Tests for the fingerprint-keyed result cache and memoization layer.

Three invariants rule this module:

* **Warm equals cold, bitwise.**  A cache hit must return the exact
  discords (starts, ends, hex-identical scores, ranks) and replay the
  exact logical ledger (``calls == true_calls + pruned``) of the run
  that populated it — for every engine, backend, and prune setting.
* **Corruption only ever costs a recompute.**  Truncated, garbled,
  version-mismatched, or mislabeled entries are discarded and reported
  as misses; they can never surface a wrong answer.
* **Disabled means untouched.**  ``cache=None`` / ``context=None``
  (the defaults) leave every code path byte-identical to the pre-cache
  behavior — pinned separately by the golden-count suite.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.cache import (
    CACHE_FORMAT,
    ResultCache,
    SearchContext,
    discord_search_key,
    grid_cell_key,
    rng_fingerprint,
)
from repro.cache.results import (
    apply_ledger_delta,
    discords_from_json,
    discords_to_json,
    ledger_delta,
)
from repro.core.anomaly import Discord
from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.discord.brute_force import brute_force_discords
from repro.discord.haar import haar_discords
from repro.discord.hotsax import hotsax_discords
from repro.observability.metrics import MetricsRegistry
from repro.resilience.budget import SearchBudget
from repro.resilience.checkpoint import series_digest
from repro.timeseries.distance import DistanceCounter

WINDOW = 40
ENGINES = ("rra", "hotsax", "haar", "brute_force")
BACKENDS = ("scalar", "kernel", "batch")


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(21)
    t = np.linspace(0.0, 30.0, 600)
    s = np.sin(t * 2 * np.pi / 5.0) + 0.15 * rng.normal(size=600)
    s[300:340] += 1.2
    return s


@pytest.fixture(scope="module")
def rra_candidates(series):
    detector = GrammarAnomalyDetector(
        window=WINDOW, paa_size=4, alphabet_size=4
    )
    return detector.fit(series).candidates


def run_engine(
    engine,
    series,
    candidates,
    *,
    backend="kernel",
    prune=False,
    cache=None,
    context=None,
    n_workers=1,
    budget=None,
):
    counter = DistanceCounter()
    kwargs = dict(
        num_discords=2,
        counter=counter,
        backend=backend,
        prune=prune,
        cache=cache,
        context=context,
        n_workers=n_workers,
        budget=budget,
    )
    if engine == "rra":
        result = find_discords(series, candidates, **kwargs)
    elif engine == "hotsax":
        result = hotsax_discords(
            series, WINDOW, paa_size=4, alphabet_size=4, **kwargs
        )
    elif engine == "haar":
        result = haar_discords(series, WINDOW, **kwargs)
    else:
        result = brute_force_discords(series, WINDOW, **kwargs)
    return result, counter


def signature(result, counter):
    """Bit-exact comparison payload: discords + logical ledger."""
    ledger = counter.ledger()
    assert ledger["calls"] == ledger["true_calls"] + ledger["pruned"]
    return (
        [
            (d.start, d.end, float(d.score).hex(), d.rank, float(d.nn_distance).hex())
            for d in result.discords
        ],
        ledger["calls"],
        ledger["true_calls"],
        ledger["pruned"],
    )


# ---------------------------------------------------------------------------
# Warm-equals-cold equivalence matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("prune", [False, True])
def test_cache_hit_bit_identical(
    series, rra_candidates, engine, backend, prune, tmp_path
):
    plain = signature(
        *run_engine(engine, series, rra_candidates, backend=backend, prune=prune)
    )
    cache = ResultCache(tmp_path / "store")
    context = SearchContext()
    cold_result, cold_counter = run_engine(
        engine,
        series,
        rra_candidates,
        backend=backend,
        prune=prune,
        cache=cache,
        context=context,
    )
    assert not cold_result.from_cache
    assert signature(cold_result, cold_counter) == plain
    warm_result, warm_counter = run_engine(
        engine,
        series,
        rra_candidates,
        backend=backend,
        prune=prune,
        cache=cache,
        context=context,
    )
    assert warm_result.from_cache
    assert signature(warm_result, warm_counter) == plain
    assert all(warm_result.rank_complete)
    assert cache.hits == 1 and cache.misses == 1


@pytest.mark.slow
@pytest.mark.parametrize("engine", ENGINES)
def test_cache_hit_across_worker_counts(
    series, rra_candidates, engine, tmp_path
):
    """``n_workers`` is excluded from the key: a parallel run populates
    the cache and a serial run is answered from it (and vice versa)."""
    plain = signature(*run_engine(engine, series, rra_candidates))
    cache = ResultCache(tmp_path / "store")
    parallel = signature(
        *run_engine(engine, series, rra_candidates, cache=cache, n_workers=2)
    )
    assert parallel == plain
    warm_serial_result, warm_serial_counter = run_engine(
        engine, series, rra_candidates, cache=cache
    )
    assert warm_serial_result.from_cache
    assert signature(warm_serial_result, warm_serial_counter) == plain
    warm_parallel_result, warm_parallel_counter = run_engine(
        engine, series, rra_candidates, cache=cache, n_workers=2
    )
    assert warm_parallel_result.from_cache
    assert signature(warm_parallel_result, warm_parallel_counter) == plain


@pytest.mark.parametrize("engine", ENGINES)
def test_context_alone_is_bit_identical(
    series, rra_candidates, engine
):
    """The memoization context never changes results, only work."""
    plain = signature(
        *run_engine(engine, series, rra_candidates, prune=True)
    )
    context = SearchContext()
    first = signature(
        *run_engine(engine, series, rra_candidates, prune=True, context=context)
    )
    again = signature(
        *run_engine(engine, series, rra_candidates, prune=True, context=context)
    )
    assert first == plain and again == plain
    assert context.hits > 0  # the second run reused artifacts


# ---------------------------------------------------------------------------
# Store robustness
# ---------------------------------------------------------------------------


def _store_one(tmp_path, key=None):
    cache = ResultCache(tmp_path / "store")
    key = key or ("ab" * 32)
    cache.put(key, {"value": 7})
    return cache, key


def test_store_roundtrip(tmp_path):
    cache, key = _store_one(tmp_path)
    assert cache.get(key) == {"value": 7}
    assert cache.stats()["entries"] == 1


def test_truncated_entry_recovers(tmp_path):
    cache, key = _store_one(tmp_path)
    path = os.path.join(cache.directory, key + ".json")
    with open(path) as fh:
        text = fh.read()
    with open(path, "w") as fh:
        fh.write(text[: len(text) // 2])
    assert cache.get(key) is None
    assert not os.path.exists(path)  # offender deleted
    assert cache.misses == 1


def test_garbage_entry_recovers(tmp_path):
    cache, key = _store_one(tmp_path)
    path = os.path.join(cache.directory, key + ".json")
    with open(path, "wb") as fh:
        fh.write(b"\x00\xff\x13garbage")
    assert cache.get(key) is None
    assert not os.path.exists(path)


def test_format_mismatch_recovers(tmp_path):
    cache, key = _store_one(tmp_path)
    path = os.path.join(cache.directory, key + ".json")
    with open(path) as fh:
        document = json.load(fh)
    document["format"] = "repro-result-cache/999"
    with open(path, "w") as fh:
        json.dump(document, fh)
    assert cache.get(key) is None
    assert not os.path.exists(path)


def test_key_mismatch_recovers(tmp_path):
    """An entry whose body disagrees with its filename is discarded."""
    cache, key = _store_one(tmp_path)
    other = "cd" * 32
    os.rename(
        os.path.join(cache.directory, key + ".json"),
        os.path.join(cache.directory, other + ".json"),
    )
    assert cache.get(other) is None
    assert cache.get(key) is None  # original name gone too


def test_malformed_keys_are_safe(tmp_path):
    cache = ResultCache(tmp_path / "store")
    for bad in ("", "short", "../../../etc/passwd", "AB" * 32, "zz" * 32):
        cache.put(bad, {"x": 1})
        assert cache.get(bad) is None
    assert cache.stats()["entries"] == 0


def test_lru_eviction_respects_byte_cap(tmp_path):
    cache = ResultCache(tmp_path / "store", max_bytes=1)
    first = "aa" * 32
    second = "bb" * 32
    cache.put(first, {"payload": "x" * 100})
    # A single oversized entry survives (the just-written entry is
    # never evicted), so one result always caches.
    assert cache.get(first) is not None
    cache.put(second, {"payload": "y" * 100})
    # The cap is enforced against older entries: first is evicted.
    assert cache.stats()["entries"] == 1
    assert cache.get(second) is not None
    assert cache.evictions == 1


def test_lru_get_refreshes_recency(tmp_path):
    entry_bytes = None
    cache = ResultCache(tmp_path / "store")
    keys = [format(i, "02d") * 32 for i in range(3)]
    for i, key in enumerate(keys):
        cache.put(key, {"i": i})
        path = os.path.join(cache.directory, key + ".json")
        entry_bytes = os.path.getsize(path)
        os.utime(path, ns=(i * 10**9, i * 10**9))  # deterministic ages
    # Touch the oldest, then shrink the cap to two entries: the
    # refreshed entry must survive, the stale middle one must go.
    assert cache.get(keys[0]) is not None
    cache.max_bytes = 2 * entry_bytes
    cache.put(keys[2], {"i": 2})  # re-put triggers eviction
    assert cache.get(keys[1]) is None
    assert cache.get(keys[0]) is not None


def test_cache_metrics_counters(tmp_path):
    registry = MetricsRegistry()
    cache = ResultCache(tmp_path / "store", max_bytes=1, metrics=registry)
    key_a, key_b = "aa" * 32, "bb" * 32
    assert cache.get(key_a) is None
    cache.put(key_a, {"v": 1})
    assert cache.get(key_a) == {"v": 1}
    cache.put(key_b, {"v": 2})  # evicts key_a (cap = 1 byte)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["cache.miss"] == 1
    assert snapshot["counters"]["cache.hit"] == 1
    assert snapshot["counters"]["cache.evicted"] == 1
    assert snapshot["gauges"]["cache.bytes"] > 0


def test_context_metrics_counters(series):
    registry = MetricsRegistry()
    context = SearchContext(metrics=registry)
    context.window_matrix(series, WINDOW)
    context.window_matrix(series, WINDOW)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["context.hit"] >= 1
    assert snapshot["counters"]["context.miss"] >= 1


# ---------------------------------------------------------------------------
# Keys and fingerprints
# ---------------------------------------------------------------------------


def test_series_digest_is_content_addressed():
    a = np.arange(50, dtype=float)
    b = np.arange(50, dtype=float)
    assert a is not b
    assert series_digest(a) == series_digest(b)
    expected = hashlib.sha256(
        np.ascontiguousarray(a, dtype=float).tobytes()
    ).hexdigest()
    assert series_digest(a) == expected


def test_series_digest_memoizes_by_identity():
    a = np.arange(64, dtype=float)
    first = series_digest(a)
    # Mutating in place is NOT rehashed for the same object — the memo
    # is keyed by array identity, per the documented contract that
    # searched series are treated as immutable.
    a[0] = 123.0
    assert series_digest(a) == first
    fresh = np.array(a)
    assert series_digest(fresh) != first


def test_discord_search_key_sensitivity(series):
    base = dict(window=40, num_discords=2, backend="kernel", prune=False)
    key = discord_search_key(series, (), engine="hotsax", params=base)
    assert len(key) == 64 and set(key) <= set("0123456789abcdef")
    assert key == discord_search_key(series, (), engine="hotsax", params=dict(base))
    assert key != discord_search_key(series, (), engine="haar", params=base)
    assert key != discord_search_key(
        series, (), engine="hotsax", params={**base, "prune": True}
    )
    rng = np.random.default_rng(0)
    assert key != discord_search_key(
        series, (), engine="hotsax", params=base, rng=rng
    )


def test_rng_fingerprint_tracks_state():
    assert rng_fingerprint(None) == "none"
    a, b = np.random.default_rng(0), np.random.default_rng(0)
    assert rng_fingerprint(a) == rng_fingerprint(b)
    a.random()
    assert rng_fingerprint(a) != rng_fingerprint(b)


def test_grid_cell_key_distinguishes_cells(series):
    k1 = grid_cell_key(series, window=40, paa_size=4, alphabet_size=3)
    k2 = grid_cell_key(series, window=40, paa_size=4, alphabet_size=4)
    k3 = grid_cell_key(series, window=40, paa_size=5, alphabet_size=3)
    assert len({k1, k2, k3}) == 3


def test_ledger_delta_roundtrip():
    before = {"calls": 10, "true_calls": 6, "lb_calls": 2, "pruned": 4}
    after = {"calls": 25, "true_calls": 16, "lb_calls": 5, "pruned": 9}
    delta = ledger_delta(before, after)
    counter = DistanceCounter()
    counter.calls, counter.true_calls = 10, 6
    counter.lb_calls, counter.pruned = 2, 4
    apply_ledger_delta(counter, delta)
    assert counter.ledger() == after


def test_discord_json_roundtrip():
    discords = [
        Discord(start=3, end=17, score=1.25, rank=0, nn_distance=1.25,
                rule_id=7, source="rra"),
        Discord(start=40, end=80, score=0.5, rank=1, nn_distance=0.5,
                rule_id=None, source="hotsax"),
    ]
    assert discords_from_json(discords_to_json(discords)) == discords


# ---------------------------------------------------------------------------
# Budget / checkpoint interoperation
# ---------------------------------------------------------------------------


def test_truncated_search_is_not_cached(series, rra_candidates, tmp_path):
    cache = ResultCache(tmp_path / "store")
    result, _ = run_engine(
        "rra",
        series,
        rra_candidates,
        cache=cache,
        budget=SearchBudget(max_calls=5),
    )
    assert not result.complete
    assert cache.stats()["entries"] == 0
    # The incomplete attempt never poisons later full runs.
    full_result, full_counter = run_engine(
        "rra", series, rra_candidates, cache=cache
    )
    assert not full_result.from_cache
    plain = signature(*run_engine("rra", series, rra_candidates))
    assert signature(full_result, full_counter) == plain


def test_resumed_search_populates_cache(series, rra_candidates, tmp_path):
    """A checkpointed run killed mid-search, then resumed to completion,
    stores the same entry an uninterrupted run would."""
    plain = signature(*run_engine("rra", series, rra_candidates))
    checkpoint = str(tmp_path / "ckpt.json")
    cache = ResultCache(tmp_path / "store")
    counter = DistanceCounter()
    partial = find_discords(
        series,
        rra_candidates,
        num_discords=2,
        counter=counter,
        budget=SearchBudget(max_calls=60),
        checkpoint_path=checkpoint,
        checkpoint_every=1,
        cache=cache,
    )
    assert not partial.complete and os.path.exists(checkpoint)
    assert cache.stats()["entries"] == 0
    counter = DistanceCounter()
    resumed = find_discords(
        series,
        rra_candidates,
        num_discords=2,
        counter=counter,
        resume_from=checkpoint,
        cache=cache,
    )
    assert resumed.complete
    assert signature(resumed, counter) == plain
    assert cache.stats()["entries"] == 1
    warm_result, warm_counter = run_engine(
        "rra", series, rra_candidates, cache=cache
    )
    assert warm_result.from_cache
    assert signature(warm_result, warm_counter) == plain


def test_cache_hit_short_circuits_checkpointing(
    series, rra_candidates, tmp_path
):
    cache = ResultCache(tmp_path / "store")
    run_engine("rra", series, rra_candidates, cache=cache)
    checkpoint = str(tmp_path / "never-written.json")
    counter = DistanceCounter()
    result = find_discords(
        series,
        rra_candidates,
        num_discords=2,
        counter=counter,
        checkpoint_path=checkpoint,
        checkpoint_every=1,
        cache=cache,
    )
    assert result.from_cache
    assert not os.path.exists(checkpoint)


# ---------------------------------------------------------------------------
# Pipeline integration
# ---------------------------------------------------------------------------


def test_pipeline_cache_path_coercion(series, tmp_path):
    directory = tmp_path / "store"
    detector = GrammarAnomalyDetector(
        window=WINDOW, paa_size=4, alphabet_size=4, cache=str(directory)
    )
    assert isinstance(detector.cache, ResultCache)
    detector.fit(series)
    cold = detector.discords(num_discords=2)
    assert not cold.from_cache
    warm_detector = GrammarAnomalyDetector(
        window=WINDOW, paa_size=4, alphabet_size=4, cache=directory
    )
    warm_detector.fit(series)
    warm = warm_detector.discords(num_discords=2)
    assert warm.from_cache
    assert [
        (d.start, d.end, float(d.score).hex()) for d in warm.discords
    ] == [(d.start, d.end, float(d.score).hex()) for d in cold.discords]
    assert warm.distance_calls == cold.distance_calls


def test_pipeline_context_shared_across_fits(series):
    context = SearchContext()
    plain = GrammarAnomalyDetector(window=WINDOW, paa_size=4, alphabet_size=4)
    expected = plain.fit(series)
    for alphabet_size in (3, 4, 5):
        detector = GrammarAnomalyDetector(
            window=WINDOW, paa_size=4, alphabet_size=alphabet_size,
            context=context,
        )
        fitted = detector.fit(series)
        if alphabet_size == 4:
            assert fitted.discretization.words == expected.discretization.words
    # windowed_paa for (window, paa) was computed once, then shared.
    assert context.hits > 0


# -- ensemble / cache interplay -------------------------------------------


def _ensemble_grid():
    from repro.core.ensemble import ensemble_grid

    return ensemble_grid([WINDOW, 60], [4, 6], [3, 4])


def test_ensemble_cold_run_populates_per_member_entries(series, tmp_path):
    """A cold ensemble run stores one cache entry per evaluated member."""
    from repro.core.ensemble import EnsembleDetector

    cache = ResultCache(tmp_path / "store")
    grid = _ensemble_grid()
    result = EnsembleDetector(grid, num_discords=2, cache=cache).fit(series)
    assert result.member_counts() == {"ok": len(grid)}
    assert cache.misses == len(grid)
    assert cache.hits == 0
    entries = list((tmp_path / "store").glob("*.json"))
    assert len(entries) == len(grid)


def test_ensemble_warm_run_is_bit_identical(series, tmp_path):
    """The warm run answers every member from the store, same bits."""
    from repro.core.ensemble import EnsembleDetector

    cache = ResultCache(tmp_path / "store")
    grid = _ensemble_grid()
    cold = EnsembleDetector(grid, num_discords=2, cache=cache).fit(series)
    warm = EnsembleDetector(grid, num_discords=2, cache=cache).fit(series)
    assert cache.hits == len(grid)
    assert warm.member_counts() == {"cached": len(grid)}
    assert warm.score_digest() == cold.score_digest()
    assert [
        (d.start, d.end, d.support, d.votes, float(d.score).hex())
        for d in warm.discords
    ] == [
        (d.start, d.end, d.support, d.votes, float(d.score).hex())
        for d in cold.discords
    ]
    assert not warm.degraded


def test_ensemble_warm_run_ignores_aggregation_knobs(series, tmp_path):
    """Cached members store RAW evidence; knob changes still hit.

    The cache key covers the member geometry and search parameters but
    deliberately not the normalization/aggregation knobs — those are
    applied at aggregate time, so one cold run warms every knob combo.
    """
    from repro.core.ensemble import EnsembleDetector

    cache = ResultCache(tmp_path / "store")
    grid = _ensemble_grid()
    EnsembleDetector(grid, num_discords=2, cache=cache).fit(series)
    rank_vote = EnsembleDetector(
        grid, num_discords=2, cache=cache,
        normalization="rank", aggregation="vote",
    ).fit(series)
    assert cache.hits == len(grid)
    assert rank_vote.member_counts() == {"cached": len(grid)}
    fresh = EnsembleDetector(
        grid, num_discords=2, normalization="rank", aggregation="vote"
    ).fit(series)
    assert rank_vote.score_digest() == fresh.score_digest()


def test_ensemble_truncated_members_are_never_cached(series, tmp_path):
    """Budget-truncated members must not poison the store.

    A tripped budget yields partial member evidence; caching it would
    let a degraded run masquerade as a complete one forever after.
    Only ``"ok"`` members are stored, so the follow-up unbudgeted run
    recomputes everything the budget cut short.
    """
    from repro.core.ensemble import EnsembleDetector

    cache = ResultCache(tmp_path / "store")
    grid = _ensemble_grid()
    budgeted = EnsembleDetector(grid, num_discords=2, cache=cache).fit(
        series, budget=SearchBudget(max_calls=1)
    )
    assert budgeted.degraded
    counts = budgeted.member_counts()
    stored = counts.get("ok", 0)
    assert counts.get("truncated", 0) + counts.get("skipped", 0) > 0
    entries = list((tmp_path / "store").glob("*.json"))
    assert len(entries) == stored
    full = EnsembleDetector(grid, num_discords=2, cache=cache).fit(series)
    assert not full.degraded
    assert full.contributing == len(grid)
    reference = EnsembleDetector(grid, num_discords=2).fit(series)
    assert full.score_digest() == reference.score_digest()


def test_ensemble_member_key_sensitivity(series):
    """Member keys split on geometry and search params, not topology."""
    from repro.cache.keys import ensemble_member_key

    base = ensemble_member_key(
        series, window=WINDOW, paa_size=4, alphabet_size=4,
        params={"num_discords": 2, "seed": 0},
    )
    same = ensemble_member_key(
        series, window=WINDOW, paa_size=4, alphabet_size=4,
        params={"num_discords": 2, "seed": 0},
    )
    assert base == same
    for other in (
        ensemble_member_key(
            series, window=WINDOW + 1, paa_size=4, alphabet_size=4,
            params={"num_discords": 2, "seed": 0},
        ),
        ensemble_member_key(
            series, window=WINDOW, paa_size=5, alphabet_size=4,
            params={"num_discords": 2, "seed": 0},
        ),
        ensemble_member_key(
            series, window=WINDOW, paa_size=4, alphabet_size=3,
            params={"num_discords": 2, "seed": 0},
        ),
        ensemble_member_key(
            series, window=WINDOW, paa_size=4, alphabet_size=4,
            params={"num_discords": 3, "seed": 0},
        ),
        ensemble_member_key(
            np.append(series, 1.0), window=WINDOW, paa_size=4,
            alphabet_size=4, params={"num_discords": 2, "seed": 0},
        ),
    ):
        assert other != base

"""Tests for repro.visualization (ASCII panels and text reports)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly, Discord
from repro.core.pipeline import GrammarAnomalyDetector
from repro.exceptions import ParameterError
from repro.visualization.ascii import (
    density_strip,
    marker_line,
    render_panels,
    sparkline,
)
from repro.visualization.report import anomaly_table, grammar_report, rule_table


class TestSparkline:
    def test_width(self):
        assert len(sparkline(np.sin(np.arange(100)), width=40)) == 40

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3], width=4)
        assert line == "▁▃▆█"

    def test_constant_series(self):
        assert sparkline(np.ones(50), width=10) == "▁" * 10

    def test_invalid_width(self):
        with pytest.raises(ParameterError):
            sparkline([1, 2], width=0)

    def test_short_series_long_width(self):
        # more cells than points still renders full width
        assert len(sparkline([1.0, 5.0], width=20)) == 20


class TestDensityStrip:
    def test_low_density_is_light(self):
        curve = np.array([10.0] * 40 + [0.0] * 10 + [10.0] * 40)
        strip = density_strip(curve, width=45)
        middle = strip[18:27]
        assert " " in middle or "░" in middle
        assert strip[0] in "▓█"

    def test_constant_curve(self):
        assert density_strip(np.full(20, 3.0), width=5) == "█████"


class TestMarkerLine:
    def test_marks_scaled_interval(self):
        line = marker_line(100, [(50, 60)], width=10)
        assert line[5] == "^"
        assert line[0] == " "

    def test_multiple_intervals(self):
        line = marker_line(100, [(0, 10), (90, 100)], width=10)
        assert line[0] == "^" and line[-1] == "^"

    def test_invalid_length(self):
        with pytest.raises(ParameterError):
            marker_line(0, [], width=10)


class TestRenderPanels:
    def test_three_lines_plus_title(self):
        series = np.sin(np.arange(200) / 10)
        curve = np.ones(200)
        text = render_panels(series, curve, [(50, 80)], width=40, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 4
        assert all(len(line) == len("series  | ") + 40 for line in lines[1:])


class TestTables:
    def test_anomaly_table_contents(self):
        anomalies = [
            Discord(start=10, end=60, score=1.5, rank=0, nn_distance=1.5),
            Anomaly(start=100, end=120, score=0.5, rank=1, source="density"),
        ]
        table = anomaly_table(anomalies)
        assert "rra" in table and "density" in table
        assert "1.50000" in table

    def test_rule_table_truncates_expansion(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        table = rule_table(detector.result.grammar, max_rules=5,
                           max_expansion_chars=20)
        lines = table.splitlines()
        assert len(lines) <= 2 + 5
        assert "R1" in table

    def test_rule_table_excludes_r0(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        table = rule_table(detector.result.grammar)
        assert "R0 " not in table


class TestGrammarReport:
    def test_report_sections(self, sine_bump):
        detector = GrammarAnomalyDetector(50, 4, 4)
        detector.fit(sine_bump.series)
        anomalies = detector.discords(num_discords=2).discords
        report = grammar_report(detector.result, anomalies)
        assert "Anomalies:" in report
        assert "Grammar rules" in report
        assert "W=50 P=4 A=4" in report
        assert "series  | " in report

"""Tests for repro.timeseries.znorm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.timeseries.znorm import (
    DEFAULT_FLATNESS_THRESHOLD,
    is_flat,
    znorm,
    znorm_or_flat,
    znorm_rows,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestZnorm:
    def test_basic_mean_and_std(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        result = znorm(values)
        assert abs(result.mean()) < 1e-12
        assert abs(result.std() - 1.0) < 1e-12

    def test_input_not_modified(self):
        values = np.array([1.0, 2.0, 3.0])
        snapshot = values.copy()
        znorm(values)
        np.testing.assert_array_equal(values, snapshot)

    def test_flat_input_is_mean_centered_not_scaled(self):
        values = np.full(50, 7.0)
        values[0] += 1e-4  # tiny ripple, std far below threshold
        result = znorm(values)
        # mean-centered...
        assert abs(result.mean()) < 1e-12
        # ...but NOT scaled up to unit variance
        assert result.std() < DEFAULT_FLATNESS_THRESHOLD

    def test_constant_input_becomes_zeros(self):
        result = znorm(np.full(10, 3.5))
        np.testing.assert_allclose(result, np.zeros(10))

    def test_empty_input(self):
        assert znorm(np.array([])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            znorm(np.zeros((3, 3)))

    def test_custom_threshold(self):
        values = np.array([0.0, 0.5, 1.0, 0.5, 0.0])
        # std ~ 0.35; with threshold above that, only mean-centering
        result = znorm(values, threshold=1.0)
        assert abs(result.std() - values.std()) < 1e-12

    def test_negative_values(self):
        values = np.array([-5.0, -3.0, -1.0, -7.0])
        result = znorm(values)
        assert abs(result.mean()) < 1e-12
        assert abs(result.std() - 1.0) < 1e-12

    @given(arrays(np.float64, st.integers(8, 64), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_property_mean_zero(self, values):
        result = znorm(values)
        assert abs(float(result.mean())) < 1e-6 * max(1.0, np.abs(values).max())

    @given(arrays(np.float64, st.integers(8, 64), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_property_std_one_or_flat(self, values):
        result = znorm(values)
        if is_flat(values):
            # flat inputs are only centered; std stays below threshold
            assert float(result.std()) < DEFAULT_FLATNESS_THRESHOLD
        else:
            assert abs(float(result.std()) - 1.0) < 1e-6

    @given(
        arrays(np.float64, st.integers(8, 32), elements=finite_floats),
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_shift_scale_invariance(self, values, scale, shift):
        """z-normalization is invariant to affine transforms (non-flat)."""
        if is_flat(values) or is_flat(values * scale + shift):
            return
        a = znorm(values)
        b = znorm(values * scale + shift)
        np.testing.assert_allclose(a, b, atol=1e-6)


class TestIsFlat:
    def test_flat(self):
        assert is_flat(np.full(10, 2.0))

    def test_not_flat(self):
        assert not is_flat(np.array([0.0, 1.0, 0.0, 1.0]))

    def test_empty_is_flat(self):
        assert is_flat(np.array([]))

    def test_threshold_boundary(self):
        values = np.array([0.0, 0.02, 0.0, 0.02])  # std = 0.01
        assert not is_flat(values, threshold=0.0099)
        assert is_flat(values, threshold=0.0101)


class TestZnormOrFlat:
    def test_reports_flat(self):
        normalized, flat = znorm_or_flat(np.full(5, 1.0))
        assert flat
        np.testing.assert_allclose(normalized, np.zeros(5))

    def test_reports_not_flat(self):
        normalized, flat = znorm_or_flat(np.array([0.0, 10.0, 0.0, 10.0]))
        assert not flat
        assert abs(normalized.std() - 1.0) < 1e-12


class TestZnormRows:
    def test_matches_per_row_znorm(self, rng):
        matrix = rng.normal(0.0, 3.0, (20, 16))
        rows = znorm_rows(matrix)
        for i in range(20):
            np.testing.assert_allclose(rows[i], znorm(matrix[i]), atol=1e-12)

    def test_flat_rows_handled(self):
        matrix = np.vstack([np.full(8, 5.0), np.arange(8.0)])
        rows = znorm_rows(matrix)
        np.testing.assert_allclose(rows[0], np.zeros(8))
        assert abs(rows[1].std() - 1.0) < 1e-12

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            znorm_rows(np.arange(5.0))

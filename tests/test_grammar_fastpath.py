"""Equivalence and golden-fingerprint tests for the grammar fast path.

The interned-token Sequitur engine (C core or pure-Python array
fallback), the vectorized numerosity reduction, and the bincount-based
density accumulation all promise **bit-identical** outputs to the
preserved reference implementations.  This suite pins that promise:

* Hypothesis property tests check ``induce_grammar`` against the
  object-based :func:`repro.grammar.legacy.induce_grammar_legacy` on
  random token sequences, separately for each available engine, and
  the streaming :class:`~repro.streaming.online_sequitur.
  IncrementalSequitur` against offline induction at every checked
  prefix.
* The vectorized :func:`repro.sax.discretize._kept_indices` is checked
  against the scalar word-string :func:`repro.sax.discretize._reduce`
  for all three numerosity strategies.
* The vectorized density-minima run extraction is checked against a
  per-point reference scan.
* Golden grammar fingerprints (rule count, token count, interval count,
  density checksum, top discords) for two seeded bundled datasets are
  pinned in ``tests/golden/grammar_fingerprints.json``; the serial run
  and the ``n_workers=2`` run must BOTH reproduce the same entry.

Regenerate the fingerprints after an *intentional* change with::

    PYTHONPATH=src python tests/test_grammar_fastpath.py --regen
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rule_density import (
    density_minima_intervals,
    density_statistics,
    rule_density_curve,
)
from repro.datasets import synthetic_ecg
from repro.datasets.synthetic import sine_with_anomaly
from repro.grammar import ccore
from repro.grammar.intervals import RuleInterval, RuleIntervalList
from repro.grammar.legacy import induce_grammar_legacy
from repro.grammar.sequitur import induce_grammar
from repro.sax.discretize import (
    NumerosityReduction,
    _kept_indices,
    _reduce,
)
from repro.streaming.online_sequitur import IncrementalSequitur

GOLDEN_PATH = Path(__file__).parent / "golden" / "grammar_fingerprints.json"
GOLDEN_FORMAT = "repro-grammar-fingerprints/1"

# ---------------------------------------------------------------------
# Engine forcing
# ---------------------------------------------------------------------

_C_AVAILABLE = ccore.load() is not None
ENGINES = ("python", "c") if _C_AVAILABLE else ("python",)


@contextlib.contextmanager
def forced_engine(name: str):
    """Run induction on a specific engine, restoring the gate after."""
    old = os.environ.get("REPRO_SEQUITUR_CORE")
    os.environ["REPRO_SEQUITUR_CORE"] = "off" if name == "python" else "require"
    ccore.reset_for_testing()
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_SEQUITUR_CORE", None)
        else:
            os.environ["REPRO_SEQUITUR_CORE"] = old
        ccore.reset_for_testing()


# ---------------------------------------------------------------------
# Interned engines vs the legacy object engine
# ---------------------------------------------------------------------

# Single- and multi-character tokens, few distinct values so random
# sequences actually repeat (repeats are what exercise rule formation,
# rule reuse, and rule deletion).
token_seqs = st.lists(
    st.sampled_from(["a", "b", "c", "d", "ab", "ba"]), max_size=150
)


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(tokens=token_seqs)
    @settings(max_examples=60, deadline=None)
    def test_matches_legacy(self, engine, tokens):
        with forced_engine(engine):
            fast = induce_grammar(tokens)
        legacy = induce_grammar_legacy(tokens)
        assert fast == legacy
        fast.verify()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pathological_runs(self, engine):
        """Long same-token runs stress overlapping-digram handling."""
        for tokens in (["a"] * 64, ["a", "b"] * 40 + ["a"] * 30):
            with forced_engine(engine):
                fast = induce_grammar(tokens)
            assert fast == induce_grammar_legacy(tokens)

    @pytest.mark.skipif(not _C_AVAILABLE, reason="no system C compiler")
    def test_c_and_python_agree(self):
        rng = np.random.default_rng(11)
        tokens = [("a", "b", "c")[i] for i in rng.integers(0, 3, 500).tolist()]
        with forced_engine("c"):
            via_c = induce_grammar(tokens)
        with forced_engine("python"):
            via_py = induce_grammar(tokens)
        assert via_c == via_py


class TestStreamingEquivalence:
    @given(tokens=token_seqs)
    @settings(max_examples=30, deadline=None)
    def test_snapshot_matches_offline(self, tokens):
        inc = IncrementalSequitur()
        for i, tok in enumerate(tokens, 1):
            inc.push(tok)
            if i % 17 == 0 or i == len(tokens):
                assert inc.snapshot() == induce_grammar(tokens[:i])


# ---------------------------------------------------------------------
# Vectorized numerosity reduction vs the scalar word-string reference
# ---------------------------------------------------------------------

_ALPHABET_SIZE = 6
_LETTERS = [chr(ord("a") + i) for i in range(_ALPHABET_SIZE)]


@st.composite
def letter_matrices(draw):
    width = draw(st.integers(min_value=2, max_value=6))
    nrows = draw(st.integers(min_value=0, max_value=40))
    # Letters drawn from a 3-value band so consecutive rows collide
    # (EXACT) and sit within MINDIST-zero range of each other often.
    rows = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=2),
                min_size=width,
                max_size=width,
            ),
            min_size=nrows,
            max_size=nrows,
        )
    )
    base = draw(st.integers(min_value=0, max_value=_ALPHABET_SIZE - 3))
    return np.asarray(rows, dtype=np.int64).reshape(nrows, width) + base


class TestNumerosityReduction:
    @given(letter_idx=letter_matrices())
    @settings(max_examples=80, deadline=None)
    def test_kept_indices_match_reduce(self, letter_idx):
        raw_words = [
            "".join(_LETTERS[i] for i in row) for row in letter_idx.tolist()
        ]
        for strategy in NumerosityReduction:
            fast = _kept_indices(letter_idx, strategy).tolist()
            reference = _reduce(raw_words, strategy, _ALPHABET_SIZE, 16)
            assert fast == reference, strategy


# ---------------------------------------------------------------------
# Density accumulation edge cases + run extraction reference
# ---------------------------------------------------------------------


class TestDensityEdgeCases:
    def test_empty_intervals_all_zero_curve(self):
        for empty in ([], RuleIntervalList()):
            curve = rule_density_curve(empty, 64)
            assert curve.dtype == np.int64
            assert curve.shape == (64,)
            assert not curve.any()

    def test_empty_intervals_zero_length_series(self):
        assert rule_density_curve([], 0).size == 0

    def test_out_of_range_intervals_ignored(self):
        intervals = [RuleInterval(1, 100, 110, usage=1)]
        assert not rule_density_curve(intervals, 50).any()

    def test_density_statistics_empty_curve(self):
        stats = density_statistics(np.array([]))
        assert stats == {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}

    def test_matches_per_interval_reference(self):
        rng = np.random.default_rng(5)
        starts = rng.integers(0, 900, size=300)
        intervals = RuleIntervalList(
            RuleInterval(int(i % 7) + 1, int(s), int(s) + int(ln), usage=1)
            for i, (s, ln) in enumerate(
                zip(starts.tolist(), rng.integers(5, 220, size=300).tolist())
            )
        )
        curve = rule_density_curve(intervals, 1000)
        reference = np.zeros(1000, dtype=np.int64)
        for iv in intervals:
            reference[iv.start : min(iv.end, 1000)] += 1
        assert np.array_equal(curve, reference)
        # second call reuses the cached endpoint arrays — same curve
        assert np.array_equal(rule_density_curve(intervals, 1000), curve)


class TestMinimaExtraction:
    @given(
        curve_vals=st.lists(st.integers(min_value=0, max_value=4), max_size=60),
        min_length=st.integers(min_value=1, max_value=4),
        threshold=st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_scan_reference(self, curve_vals, min_length, threshold):
        curve = np.asarray(curve_vals, dtype=np.int64)
        got = density_minima_intervals(
            curve, threshold=threshold, min_length=min_length
        )
        if curve.size == 0:
            assert got == []
            return
        cutoff = float(curve.min()) if threshold is None else threshold
        expected, run_start = [], None
        for i, value in enumerate(curve_vals):
            if value <= cutoff:
                if run_start is None:
                    run_start = i
            elif run_start is not None:
                if i - run_start >= min_length:
                    expected.append((run_start, i))
                run_start = None
        if run_start is not None and len(curve_vals) - run_start >= min_length:
            expected.append((run_start, len(curve_vals)))
        assert got == expected


# ---------------------------------------------------------------------
# Golden grammar fingerprints, serial and n_workers=2
# ---------------------------------------------------------------------

DATASETS = {
    "sine": dict(kind="sine", length=1200, period=100, seed=7),
    "ecg": dict(kind="ecg", num_beats=8, anomaly_beats=(5,), seed=3),
}


def _load_dataset(name: str):
    spec = DATASETS[name]
    if spec["kind"] == "sine":
        return sine_with_anomaly(
            length=spec["length"], period=spec["period"], seed=spec["seed"]
        )
    return synthetic_ecg(
        num_beats=spec["num_beats"],
        anomaly_beats=spec["anomaly_beats"],
        seed=spec["seed"],
    )


def grammar_fingerprint(name: str, n_workers: int) -> dict:
    """The grammar front half plus top discords, as a comparable dict."""
    dataset = _load_dataset(name)
    detector = GrammarAnomalyDetector(
        window=dataset.window,
        paa_size=dataset.paa_size,
        alphabet_size=dataset.alphabet_size,
        n_workers=n_workers,
    )
    result = detector.fit(dataset.series)
    density = np.ascontiguousarray(result.density, dtype=np.int64)
    discords = detector.discords(num_discords=2).discords
    return {
        "rules": len(result.grammar),
        "tokens": len(result.discretization),
        "raw_words": result.discretization.raw_word_count,
        "intervals": len(result.intervals),
        "gaps": len(result.gaps),
        "density_checksum": hashlib.sha256(density.tobytes()).hexdigest()[:16],
        "discords": [
            [d.start, d.end, round(float(d.score), 10)] for d in discords
        ],
    }


def _compute_all() -> dict:
    entries = {}
    for name in sorted(DATASETS):
        serial = grammar_fingerprint(name, n_workers=1)
        parallel = grammar_fingerprint(name, n_workers=2)
        assert serial == parallel, f"{name}: parallel fingerprint diverged"
        entries[name] = serial
    return {"format": GOLDEN_FORMAT, "fingerprints": entries}


class TestGoldenFingerprints:
    @pytest.fixture(scope="class")
    def golden(self):
        assert GOLDEN_PATH.exists(), (
            "missing golden fingerprints; regenerate with "
            "PYTHONPATH=src python tests/test_grammar_fastpath.py --regen"
        )
        data = json.loads(GOLDEN_PATH.read_text())
        assert data["format"] == GOLDEN_FORMAT
        return data["fingerprints"]

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_serial_and_parallel_match_golden(self, golden, name):
        serial = grammar_fingerprint(name, n_workers=1)
        parallel = grammar_fingerprint(name, n_workers=2)
        assert serial == golden[name]
        assert parallel == golden[name]


def _regen() -> None:
    GOLDEN_PATH.write_text(json.dumps(_compute_all(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)

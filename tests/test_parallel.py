"""Tests for the process-pool execution layer (:mod:`repro.parallel`).

The headline property: for every search engine and any worker count,
the parallel search returns *bit-identical* results to the serial one —
same discords, same ranks, same scores, same aggregated distance-call
counts.  The scan-record/replay scheme (see :mod:`repro.parallel.scan`)
makes this exact, not approximate, so these tests assert equality, not
tolerance.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.parameter_grid import ParameterGridStudy
from repro.core.pipeline import GrammarAnomalyDetector
from repro.core.rra import find_discords
from repro.datasets.ecg import synthetic_ecg
from repro.datasets.power import dutch_power_demand_like
from repro.discord.brute_force import brute_force_discords
from repro.discord.haar import haar_discords
from repro.discord.hotsax import hotsax_discords
from repro.exceptions import ParameterError
from repro.parallel import effective_workers, shard_slices, strided_wave_plan
from repro.parallel.pool import budget_from_spec, budget_to_spec
from repro.resilience.budget import CancellationToken, SearchBudget, SearchStatus
from repro.timeseries.distance import DistanceCounter


def _tuples(discords):
    """Comparable fingerprint of a discord list."""
    return [(d.start, d.end, d.rank, round(d.score, 12)) for d in discords]


def _no_orphans():
    assert multiprocessing.active_children() == []


# -- pool plumbing unit tests ------------------------------------------


def test_effective_workers():
    assert effective_workers(None) == 1
    assert effective_workers(1) == 1
    assert effective_workers(4) == 4
    with pytest.raises(ParameterError):
        effective_workers(0)


def test_shard_slices_cover_range_contiguously():
    for total in (0, 1, 7, 8, 23):
        for chunks in (1, 2, 4, 9):
            slices = shard_slices(total, chunks)
            covered = [i for lo, hi in slices for i in range(lo, hi)]
            assert covered == list(range(total))
            sizes = [hi - lo for lo, hi in slices]
            assert all(s > 0 for s in sizes)
            if sizes:
                assert max(sizes) - min(sizes) <= 1


def test_strided_wave_plan_covers_range():
    for total in (0, 1, 7, 12, 100, 727):
        for workers in (1, 2, 4):
            plan = strided_wave_plan(total, workers)
            prev_hi = 0
            for lo, hi, n_chunks in plan:
                assert lo == prev_hi and hi > lo
                assert 1 <= n_chunks <= hi - lo
                # The round-robin deal covers the wave exactly once.
                dealt = sorted(
                    i
                    for c in range(n_chunks)
                    for i in range(lo + c, hi, n_chunks)
                )
                assert dealt == list(range(lo, hi))
                prev_hi = hi
            assert prev_hi == total
    assert strided_wave_plan(0, 4) == []
    with pytest.raises(ParameterError):
        strided_wave_plan(10, 0)


def test_budget_spec_round_trip():
    assert budget_to_spec(None) is None
    assert budget_to_spec(SearchBudget.unlimited()) is None
    spec = budget_to_spec(SearchBudget(deadline=2.5, max_calls=100))
    rebuilt = budget_from_spec(spec)
    assert rebuilt.deadline == 2.5
    assert rebuilt.max_calls == 100


def test_budget_split_fair_share():
    budget = SearchBudget(max_calls=100)
    shares = budget.split(3, calls_spent=10)
    assert [b.max_calls for b in shares] == [30, 30, 30]
    assert all(b.deadline is None for b in shares)
    # Exhausted parent -> zero-call shards.
    assert [b.max_calls for b in budget.split(2, calls_spent=100)] == [0, 0]
    # Unlimited parent -> unlimited shards.
    assert all(b.max_calls is None for b in SearchBudget.unlimited().split(4))
    with pytest.raises(ParameterError):
        budget.split(0)


def test_distance_counter_merge():
    a, b = DistanceCounter(), DistanceCounter()
    a.batch(5)
    b.batch(7)
    assert a.merge(b) is a
    assert a.calls == 12
    assert b.calls == 7  # merge does not mutate the source
    a += b
    assert a.calls == 19
    with pytest.raises(ParameterError):
        a.merge(object())
    with pytest.raises(TypeError):
        a += 3


# -- determinism: parallel == serial, bit for bit ----------------------


@pytest.fixture(scope="module")
def ecg():
    return synthetic_ecg(seed=5)


@pytest.fixture(scope="module")
def power():
    return dutch_power_demand_like(weeks=4, holiday_weeks=((2, 2),), seed=3)


@pytest.fixture(scope="module")
def ecg_candidates(ecg):
    detector = GrammarAnomalyDetector(
        ecg.window, ecg.paa_size, ecg.alphabet_size
    )
    fitted = detector.fit(ecg.series)
    return fitted.series, fitted.candidates


ENGINES = {
    "hotsax": hotsax_discords,
    "haar": haar_discords,
    "brute": brute_force_discords,
}


@pytest.mark.slow
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("n_workers", [2, 4])
def test_fixed_engines_parallel_identical_ecg(ecg, engine, n_workers):
    run = ENGINES[engine]
    kwargs = dict(num_discords=2, backend="kernel")
    serial = run(ecg.series, ecg.window, n_workers=1, **kwargs)
    parallel = run(ecg.series, ecg.window, n_workers=n_workers, **kwargs)
    assert _tuples(parallel.discords) == _tuples(serial.discords)
    assert parallel.distance_calls == serial.distance_calls
    assert parallel.status is SearchStatus.COMPLETE
    _no_orphans()


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_rra_parallel_identical_ecg(ecg_candidates, n_workers):
    series, candidates = ecg_candidates
    serial = find_discords(
        series, candidates, num_discords=2, rng=np.random.default_rng(0)
    )
    parallel = find_discords(
        series,
        candidates,
        num_discords=2,
        rng=np.random.default_rng(0),
        n_workers=n_workers,
    )
    assert _tuples(parallel.discords) == _tuples(serial.discords)
    assert parallel.distance_calls == serial.distance_calls
    assert parallel.complete
    _no_orphans()


@pytest.mark.slow
def test_hotsax_parallel_identical_power(power):
    serial = hotsax_discords(power.series, power.window, num_discords=1)
    parallel = hotsax_discords(
        power.series, power.window, num_discords=1, n_workers=2
    )
    assert _tuples(parallel.discords) == _tuples(serial.discords)
    assert parallel.distance_calls == serial.distance_calls
    _no_orphans()


def test_rra_parallel_identical_power(power):
    detector = GrammarAnomalyDetector(
        power.window, power.paa_size, power.alphabet_size
    )
    fitted = detector.fit(power.series)
    serial = find_discords(
        fitted.series, fitted.candidates, rng=np.random.default_rng(0)
    )
    parallel = find_discords(
        fitted.series,
        fitted.candidates,
        rng=np.random.default_rng(0),
        n_workers=2,
    )
    assert _tuples(parallel.discords) == _tuples(serial.discords)
    assert parallel.distance_calls == serial.distance_calls
    _no_orphans()


@pytest.mark.parametrize("engine", ["hotsax", "brute"])
def test_scalar_backend_parallel_identical(short_series, engine):
    run = ENGINES[engine]
    serial = run(short_series, 40, num_discords=1, backend="scalar")
    parallel = run(
        short_series, 40, num_discords=1, backend="scalar", n_workers=2
    )
    assert _tuples(parallel.discords) == _tuples(serial.discords)
    assert parallel.distance_calls == serial.distance_calls
    _no_orphans()


def test_rra_scalar_backend_parallel_identical(ecg_candidates):
    series, candidates = ecg_candidates
    serial = find_discords(
        series, candidates, rng=np.random.default_rng(0), backend="scalar"
    )
    parallel = find_discords(
        series,
        candidates,
        rng=np.random.default_rng(0),
        backend="scalar",
        n_workers=2,
    )
    assert _tuples(parallel.discords) == _tuples(serial.discords)
    assert parallel.distance_calls == serial.distance_calls
    _no_orphans()


def test_detector_n_workers_end_to_end(ecg):
    serial = GrammarAnomalyDetector(ecg.window, ecg.paa_size, ecg.alphabet_size)
    serial.fit(ecg.series)
    ref = serial.discords(num_discords=2)
    threaded = GrammarAnomalyDetector(
        ecg.window, ecg.paa_size, ecg.alphabet_size, n_workers=2
    )
    threaded.fit(ecg.series)
    via_ctor = threaded.discords(num_discords=2)
    via_override = serial.discords(num_discords=2, n_workers=2)
    for result in (via_ctor, via_override):
        assert _tuples(result.discords) == _tuples(ref.discords)
        assert result.distance_calls == ref.distance_calls
    _no_orphans()


# -- budgets and cancellation under the pool ---------------------------


def test_parallel_max_calls_is_anytime(ecg_candidates):
    series, candidates = ecg_candidates
    full = find_discords(series, candidates, rng=np.random.default_rng(0))
    assert full.complete
    starved = find_discords(
        series,
        candidates,
        rng=np.random.default_rng(0),
        budget=SearchBudget(max_calls=full.distance_calls // 3),
        n_workers=2,
    )
    assert starved.status is SearchStatus.BUDGET_EXHAUSTED
    assert not starved.complete
    assert starved.distance_calls <= full.distance_calls
    _no_orphans()


def test_parallel_pre_cancelled_token(ecg_candidates):
    series, candidates = ecg_candidates
    token = CancellationToken()
    token.cancel()
    result = find_discords(
        series,
        candidates,
        rng=np.random.default_rng(0),
        budget=SearchBudget(token=token),
        n_workers=2,
    )
    assert result.status is SearchStatus.CANCELLED
    assert result.distance_calls == 0
    _no_orphans()


def test_parallel_fixed_engine_budget(ecg):
    full = hotsax_discords(ecg.series, ecg.window, num_discords=1)
    starved = hotsax_discords(
        ecg.series,
        ecg.window,
        num_discords=1,
        budget=SearchBudget(max_calls=full.distance_calls // 4),
        n_workers=2,
    )
    assert starved.status is SearchStatus.BUDGET_EXHAUSTED
    _no_orphans()


def test_parallel_checkpoint_resumes_serially_and_parallel(
    ecg_candidates, tmp_path
):
    series, candidates = ecg_candidates
    reference = find_discords(
        series, candidates, num_discords=2, rng=np.random.default_rng(0)
    )
    assert reference.complete

    path = str(tmp_path / "parallel.ckpt.json")
    starved = find_discords(
        series,
        candidates,
        num_discords=2,
        rng=np.random.default_rng(0),
        budget=SearchBudget(max_calls=reference.distance_calls // 3),
        checkpoint_path=path,
        checkpoint_every=1,
        n_workers=2,
    )
    assert not starved.complete

    for workers in (1, 2):
        resumed = find_discords(
            series,
            candidates,
            num_discords=2,
            resume_from=path,
            n_workers=workers,
        )
        assert resumed.complete
        assert _tuples(resumed.discords) == _tuples(reference.discords)
        assert resumed.distance_calls == reference.distance_calls
    _no_orphans()


# -- parameter-grid sweep ----------------------------------------------


def test_grid_sweep_parallel_matches_serial(sine_bump):
    study = ParameterGridStudy(sine_bump.series[:1200], (1000, 1080))
    grid = ([40, 60], [3, 4], [3, 4])
    serial = study.sweep(*grid)
    parallel = study.sweep(*grid, n_workers=2)
    assert parallel == serial
    assert serial  # the grid is not degenerate
    _no_orphans()


def test_grid_pair_hoisting_matches_per_point(sine_bump):
    study = ParameterGridStudy(sine_bump.series[:1200], (1000, 1080))
    legacy = [
        point
        for a in (3, 4, 5)
        if (point := study.evaluate_point(60, 4, a)) is not None
    ]
    assert study._evaluate_pair(60, 4, (3, 4, 5)) == legacy

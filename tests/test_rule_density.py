"""Tests for repro.core.rule_density."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rule_density import (
    density_minima_intervals,
    density_statistics,
    find_density_anomalies,
    rule_density_curve,
)
from repro.exceptions import ParameterError
from repro.grammar.intervals import RuleInterval


class TestRuleDensityCurve:
    def test_single_interval(self):
        curve = rule_density_curve([RuleInterval(1, 2, 5, usage=2)], 8)
        np.testing.assert_array_equal(curve, [0, 0, 1, 1, 1, 0, 0, 0])

    def test_overlapping_intervals_sum(self):
        intervals = [
            RuleInterval(1, 0, 6, usage=2),
            RuleInterval(2, 3, 9, usage=2),
        ]
        curve = rule_density_curve(intervals, 10)
        np.testing.assert_array_equal(curve, [1, 1, 1, 2, 2, 2, 1, 1, 1, 0])

    def test_empty_intervals(self):
        np.testing.assert_array_equal(rule_density_curve([], 4), np.zeros(4))

    def test_interval_clipped_at_series_end(self):
        curve = rule_density_curve([RuleInterval(1, 2, 99, usage=2)], 5)
        np.testing.assert_array_equal(curve, [0, 0, 1, 1, 1])

    def test_interval_beyond_series_ignored(self):
        curve = rule_density_curve([RuleInterval(1, 10, 20, usage=2)], 5)
        np.testing.assert_array_equal(curve, np.zeros(5))

    def test_negative_length_rejected(self):
        with pytest.raises(ParameterError):
            rule_density_curve([], -1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 90), st.integers(1, 30)),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_naive_counting(self, raw):
        intervals = [RuleInterval(1, s, s + l, usage=2) for s, l in raw]
        curve = rule_density_curve(intervals, 100)
        naive = np.zeros(100, dtype=int)
        for iv in intervals:
            naive[iv.start : min(iv.end, 100)] += 1
        np.testing.assert_array_equal(curve, naive)

    def test_linear_total_mass(self):
        intervals = [RuleInterval(1, i, i + 10, usage=2) for i in range(0, 50, 5)]
        curve = rule_density_curve(intervals, 100)
        assert curve.sum() == sum(min(iv.end, 100) - iv.start for iv in intervals)


class TestDensityMinimaIntervals:
    def test_global_min_default(self):
        curve = np.array([3, 3, 1, 1, 3, 3, 2, 3])
        assert density_minima_intervals(curve) == [(2, 4)]

    def test_threshold(self):
        curve = np.array([3, 3, 1, 1, 3, 3, 2, 3])
        assert density_minima_intervals(curve, threshold=2) == [(2, 4), (6, 7)]

    def test_min_length(self):
        curve = np.array([3, 1, 3, 1, 1, 3])
        assert density_minima_intervals(curve, min_length=2) == [(3, 5)]

    def test_interval_reaching_end(self):
        curve = np.array([3, 3, 0, 0])
        assert density_minima_intervals(curve) == [(2, 4)]

    def test_empty_curve(self):
        assert density_minima_intervals(np.array([])) == []

    def test_constant_curve_everything_minimal(self):
        curve = np.full(6, 2)
        assert density_minima_intervals(curve) == [(0, 6)]


class TestFindDensityAnomalies:
    def test_ranking_by_mean_density(self):
        curve = np.array([5, 5, 0, 0, 5, 5, 1, 1, 5, 5], dtype=float)
        anomalies = find_density_anomalies(curve, threshold=1)
        assert [(a.start, a.end) for a in anomalies] == [(2, 4), (6, 8)]
        assert anomalies[0].rank == 0
        assert anomalies[0].score > anomalies[1].score

    def test_max_anomalies(self):
        curve = np.array([5, 0, 5, 0, 5, 0, 5], dtype=float)
        anomalies = find_density_anomalies(curve, max_anomalies=2)
        assert len(anomalies) == 2

    def test_edge_exclusion(self):
        curve = np.array([0, 0, 5, 5, 1, 1, 5, 5, 0, 0], dtype=float)
        # without exclusion: edges (density 0) win
        plain = find_density_anomalies(curve)
        assert plain[0].start in (0, 8)
        # with exclusion: the interior minimum wins
        trimmed = find_density_anomalies(curve, edge_exclusion=2)
        assert (trimmed[0].start, trimmed[0].end) == (4, 6)

    def test_edge_exclusion_too_large_is_ignored(self):
        curve = np.array([1, 0, 1], dtype=float)
        anomalies = find_density_anomalies(curve, edge_exclusion=5)
        assert anomalies  # falls back to the full curve

    def test_negative_edge_exclusion_rejected(self):
        with pytest.raises(ParameterError):
            find_density_anomalies(np.zeros(5), edge_exclusion=-1)

    def test_source_tag(self):
        anomalies = find_density_anomalies(np.array([1.0, 0.0, 1.0]))
        assert all(a.source == "density" for a in anomalies)


class TestDensityStatistics:
    def test_basic(self):
        stats = density_statistics(np.array([0.0, 2.0, 4.0]))
        assert stats["min"] == 0.0
        assert stats["max"] == 4.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_empty(self):
        stats = density_statistics(np.array([]))
        assert stats["mean"] == 0.0

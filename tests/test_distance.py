"""Tests for repro.timeseries.distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ParameterError
from repro.timeseries.distance import (
    DistanceCounter,
    euclidean,
    euclidean_early_abandon,
    normalized_euclidean,
    variable_length_distance,
)
from repro.timeseries.znorm import znorm

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_zero_for_identical(self):
        values = np.array([1.0, -2.0, 3.0])
        assert euclidean(values, values) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            euclidean(np.zeros(3), np.zeros(4))

    @given(
        arrays(np.float64, st.integers(2, 32), elements=finite),
        arrays(np.float64, st.integers(2, 32), elements=finite),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_symmetry(self, a, b):
        n = min(a.size, b.size)
        a, b = a[:n], b[:n]
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(arrays(np.float64, st.integers(2, 32), elements=finite))
    @settings(max_examples=60, deadline=None)
    def test_property_non_negative(self, a):
        b = a[::-1].copy()
        assert euclidean(a, b) >= 0.0


class TestEarlyAbandon:
    def test_matches_exact_when_under_cutoff(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        exact = euclidean(a, b)
        assert euclidean_early_abandon(a, b, exact + 1.0) == pytest.approx(exact)

    def test_abandons_above_cutoff(self, rng):
        a = rng.normal(size=200)
        b = a + 10.0 + rng.normal(size=200)
        assert euclidean_early_abandon(a, b, 1.0) == float("inf")

    def test_infinite_cutoff_is_exact(self, rng):
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        assert euclidean_early_abandon(a, b, float("inf")) == pytest.approx(
            euclidean(a, b)
        )

    @given(
        arrays(np.float64, st.integers(4, 128), elements=finite),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_abandon_only_above_cutoff(self, a, cutoff):
        b = np.roll(a, 1)
        result = euclidean_early_abandon(a, b, cutoff)
        exact = euclidean(a, b)
        if np.isfinite(result):
            assert result == pytest.approx(exact)
            assert exact <= cutoff + 1e-9 or result == pytest.approx(exact)
        else:
            assert exact > cutoff - 1e-9


class TestNormalizedEuclidean:
    def test_scales_with_sqrt_length(self):
        a = np.zeros(16)
        b = np.ones(16)
        # euclidean = 4; normalized = 4 / sqrt(16) = 1
        assert normalized_euclidean(a, b) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            normalized_euclidean(np.array([]), np.array([]))

    def test_length_invariance_for_repeated_pattern(self):
        """Eq. 1 rationale: repeating the same mismatch keeps the score."""
        a1, b1 = np.array([0.0, 1.0] * 4), np.array([1.0, 0.0] * 4)
        a2, b2 = np.array([0.0, 1.0] * 16), np.array([1.0, 0.0] * 16)
        assert normalized_euclidean(a1, b1) == pytest.approx(
            normalized_euclidean(a2, b2)
        )


class TestVariableLengthDistance:
    def test_equal_lengths_is_normalized_euclidean(self, rng):
        a = rng.normal(size=32)
        b = rng.normal(size=32)
        expected = normalized_euclidean(znorm(a), znorm(b))
        assert variable_length_distance(a, b) == pytest.approx(expected)

    def test_finds_embedded_match(self, rng):
        """A short shape embedded in a longer one gives ~zero distance."""
        long_seq = rng.normal(size=100)
        short = long_seq[30:60]
        dist = variable_length_distance(short, long_seq, normalize_inputs=False)
        assert dist == pytest.approx(0.0, abs=1e-12)

    def test_symmetry_in_argument_order(self, rng):
        a = rng.normal(size=20)
        b = rng.normal(size=35)
        assert variable_length_distance(a, b) == pytest.approx(
            variable_length_distance(b, a)
        )

    def test_normalize_inputs_flag(self):
        a = np.array([0.0, 10.0, 0.0, 10.0])
        b = np.array([0.0, 1.0, 0.0, 1.0])
        # z-normalized, the two are identical shapes
        assert variable_length_distance(a, b) == pytest.approx(0.0, abs=1e-9)
        # raw, they are far apart
        assert variable_length_distance(a, b, normalize_inputs=False) > 1.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            variable_length_distance(np.array([]), np.array([1.0]))

    @given(
        arrays(np.float64, st.integers(8, 24), elements=finite),
        arrays(np.float64, st.integers(8, 24), elements=finite),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_non_negative_and_symmetric(self, a, b):
        d1 = variable_length_distance(a, b)
        d2 = variable_length_distance(b, a)
        assert d1 >= 0.0
        assert d1 == pytest.approx(d2, abs=1e-9)


class TestDistanceCounter:
    def test_counts_euclidean(self, rng):
        counter = DistanceCounter()
        a, b = rng.normal(size=8), rng.normal(size=8)
        counter.euclidean(a, b)
        counter.euclidean(a, b)
        assert counter.calls == 2

    def test_counts_variable_length(self, rng):
        counter = DistanceCounter()
        counter.variable_length(rng.normal(size=8), rng.normal(size=12))
        assert counter.calls == 1

    def test_abandoned_calls_count(self, rng):
        counter = DistanceCounter()
        a = rng.normal(size=100)
        counter.euclidean(a, a + 100.0, cutoff=0.1)
        assert counter.calls == 1

    def test_reset(self):
        counter = DistanceCounter()
        counter.euclidean(np.zeros(4), np.ones(4))
        counter.reset()
        assert counter.calls == 0

    def test_result_matches_plain_function(self, rng):
        counter = DistanceCounter()
        a, b = rng.normal(size=16), rng.normal(size=16)
        assert counter.euclidean(a, b) == pytest.approx(euclidean(a, b))


class TestVariableLengthAlignmentEdgeCases:
    """Unequal-length alignment against a naive reference implementation."""

    @staticmethod
    def _naive_reference(p, q, *, normalize_inputs=True):
        """Direct transcription of DESIGN.md §5: slide, score, minimize."""
        p = np.asarray(p, dtype=float)
        q = np.asarray(q, dtype=float)
        if normalize_inputs:
            p, q = znorm(p), znorm(q)
        short, long_ = (p, q) if p.size <= q.size else (q, p)
        best = float("inf")
        for offset in range(long_.size - short.size + 1):
            segment = long_[offset : offset + short.size]
            best = min(
                best,
                float(np.sqrt(np.sum((short - segment) ** 2) / short.size)),
            )
        return best

    def test_shortest_possible_shorter(self, rng):
        """shorter == 2 — the smallest length RRA ever compares."""
        for _ in range(10):
            short = rng.normal(size=2)
            long_ = rng.normal(size=int(rng.integers(2, 30)))
            expected = self._naive_reference(short, long_)
            assert variable_length_distance(short, long_) == pytest.approx(
                expected, abs=1e-9
            )

    def test_lengths_differing_by_one(self, rng):
        """Off-by-one lengths exercise the two-offset alignment."""
        for n in (2, 3, 7, 16):
            p = rng.normal(size=n)
            q = rng.normal(size=n + 1)
            expected = self._naive_reference(p, q)
            assert variable_length_distance(p, q) == pytest.approx(
                expected, abs=1e-9
            )
            assert variable_length_distance(q, p) == pytest.approx(
                expected, abs=1e-9
            )

    def test_constant_short_against_noisy_long(self, rng):
        """A flat segment is mean-centered (not scaled) before comparing."""
        short = np.full(5, 3.25)
        long_ = rng.normal(size=20)
        expected = self._naive_reference(short, long_)
        assert variable_length_distance(short, long_) == pytest.approx(
            expected, abs=1e-9
        )

    def test_both_constant(self):
        """Two flat segments z-normalize to zeros: distance is exactly 0."""
        p = np.full(4, 7.0)
        q = np.full(9, -2.0)
        assert variable_length_distance(p, q) == pytest.approx(0.0, abs=1e-12)

    def test_flat_stretch_inside_long(self, rng):
        """Plateaus inside the longer sequence must not derail alignment."""
        long_ = rng.normal(size=40)
        long_[10:25] = 0.5
        short = rng.normal(size=8)
        expected = self._naive_reference(short, long_)
        assert variable_length_distance(short, long_) == pytest.approx(
            expected, abs=1e-9
        )

    def test_unnormalized_inputs_edge_lengths(self, rng):
        for n, m in [(2, 3), (2, 2), (3, 4), (5, 40)]:
            p = rng.normal(size=n)
            q = rng.normal(size=m)
            expected = self._naive_reference(p, q, normalize_inputs=False)
            got = variable_length_distance(p, q, normalize_inputs=False)
            assert got == pytest.approx(expected, abs=1e-9)

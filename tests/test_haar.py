"""Tests for repro.discord.haar — the Haar-ordered discord baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.discord.brute_force import brute_force_discord
from repro.discord.haar import (
    haar_discord,
    haar_discords,
    haar_transform,
    haar_words,
)
from repro.exceptions import DiscordSearchError, ParameterError

finite = st.floats(min_value=-100, max_value=100, allow_nan=False,
                   allow_infinity=False)


def _series_with_blip(length=400, period=40, blip_at=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.02, length)
    series[blip_at : blip_at + 30] += 2.0
    return series


class TestHaarTransform:
    def test_constant_input(self):
        out = haar_transform(np.full(8, 5.0))
        assert out[0] == pytest.approx(5.0)
        np.testing.assert_allclose(out[1:], 0.0, atol=1e-12)

    def test_step_input(self):
        # [1,1,1,1,-1,-1,-1,-1]: average 0, coarsest detail 1, rest 0
        values = np.array([1.0] * 4 + [-1.0] * 4)
        out = haar_transform(values)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        np.testing.assert_allclose(out[2:], 0.0, atol=1e-12)

    def test_first_coefficient_is_mean_for_pow2(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=16)
        assert haar_transform(values)[0] == pytest.approx(values.mean())

    def test_non_power_of_two_padded(self):
        out = haar_transform(np.arange(5.0))
        assert out.size == 8

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            haar_transform(np.array([]))

    @given(arrays(np.float64, st.sampled_from([4, 8, 16, 32]), elements=finite))
    @settings(max_examples=60, deadline=None)
    def test_property_energy_reconstruction(self, values):
        """The transform is invertible: reconstruct and compare."""
        out = haar_transform(values)
        # inverse: iteratively undo the averaging/differencing
        size = out.size
        data = out.copy()
        length = 2
        while length <= size:
            half = length // 2
            evens = data[:half] + data[half:length]
            odds = data[:half] - data[half:length]
            merged = np.empty(length)
            merged[0::2] = evens
            merged[1::2] = odds
            data[:length] = merged
            length *= 2
        np.testing.assert_allclose(data[: values.size], values, atol=1e-8)


class TestHaarWords:
    def test_one_word_per_window(self):
        series = _series_with_blip()
        words = haar_words(series, 40)
        assert len(words) == series.size - 40 + 1

    def test_word_length_is_num_coefficients(self):
        series = _series_with_blip()
        words = haar_words(series, 40, num_coefficients=6)
        assert all(len(w) == 6 for w in words)

    def test_similar_windows_share_words(self):
        """Windows one period apart get the same Haar word."""
        series = _series_with_blip(length=600, blip_at=500)
        words = haar_words(series, 40)
        same = sum(1 for i in range(0, 300) if words[i] == words[i + 40])
        assert same > 150  # the majority agree across one period

    def test_invalid_coefficients(self):
        with pytest.raises(ParameterError):
            haar_words(_series_with_blip(), 40, num_coefficients=0)


class TestHaarDiscord:
    def test_finds_planted_blip(self):
        series = _series_with_blip()
        discord, _ = haar_discord(series, 40)
        assert 160 <= discord.start <= 235

    def test_agrees_with_brute_force(self):
        """Haar ordering is a heuristic; the search stays exact."""
        for seed in range(3):
            series = _series_with_blip(seed=seed, blip_at=100 + 60 * seed)
            brute, _ = brute_force_discord(series, 32)
            haar, _ = haar_discord(series, 32)
            assert (haar.start, haar.end) == (brute.start, brute.end)
            assert haar.nn_distance == pytest.approx(brute.nn_distance)

    def test_fewer_calls_than_brute_force(self):
        from repro.discord.brute_force import brute_force_call_count

        series = _series_with_blip(length=600)
        _, counter = haar_discord(series, 40)
        assert counter.calls < brute_force_call_count(600, 40) / 3

    def test_source_tag(self):
        series = _series_with_blip()
        discord, _ = haar_discord(series, 40)
        assert discord.source == "haar"

    def test_multi_discords(self):
        series = _series_with_blip()
        result = haar_discords(series, 40, num_discords=2)
        assert len(result.discords) == 2
        assert abs(result.discords[0].start - result.discords[1].start) > 40

    def test_too_short(self):
        with pytest.raises(DiscordSearchError):
            haar_discord(np.zeros(5), 10)

    def test_invalid_count(self):
        with pytest.raises(DiscordSearchError):
            haar_discords(np.zeros(100), 10, num_discords=0)

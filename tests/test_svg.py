"""Tests for repro.visualization.svg — the figure renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.visualization.svg import (
    COLOR_BAND,
    FigurePlot,
    SVGCanvas,
    hilbert_plot,
    scatter_plot,
    trajectory_plot,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg: str) -> ET.Element:
    """Round-trip through an XML parser — malformed SVG raises here."""
    return ET.fromstring(svg)


def _count(root: ET.Element, tag: str) -> int:
    return len(root.findall(f".//{SVG_NS}{tag}"))


class TestSVGCanvas:
    def test_well_formed(self):
        canvas = SVGCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, fill="red")
        canvas.line(0, 0, 5, 5)
        canvas.circle(3, 3, 1)
        canvas.text(1, 1, "hello <&> world")
        root = _parse(canvas.render())
        assert root.get("width") == "100"
        assert _count(root, "rect") == 2  # background + one rect
        assert _count(root, "line") == 1
        assert _count(root, "circle") == 1
        assert _count(root, "text") == 1

    def test_text_is_escaped(self):
        canvas = SVGCanvas(10, 10)
        canvas.text(0, 0, "<script>")
        svg = canvas.render()
        assert "<script>" not in svg
        assert "&lt;script&gt;" in svg

    def test_invalid_size(self):
        with pytest.raises(ParameterError):
            SVGCanvas(0, 10)

    def test_save(self, tmp_path):
        canvas = SVGCanvas(20, 20)
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")

    def test_short_polyline_ignored(self):
        canvas = SVGCanvas(10, 10)
        canvas.polyline([(1, 1)])
        assert _count(_parse(canvas.render()), "polyline") == 0


class TestFigurePlot:
    def _series(self, n=500):
        return np.sin(np.arange(n) / 10.0)

    def test_multi_panel_layout(self):
        series = self._series()
        fig = FigurePlot(series.size)
        fig.title = "demo"
        fig.add_line_panel("series", series, bands=[(100, 200, COLOR_BAND)])
        fig.add_line_panel("density", np.abs(series), steps=True)
        fig.add_stem_panel("nn", [(50, 1.0), (250, 2.0)])
        root = _parse(fig.render())
        # one polyline per line panel (steps included), stems as lines
        assert _count(root, "polyline") == 2
        assert _count(root, "text") >= 7  # title + per-panel labels

    def test_band_rendered(self):
        series = self._series()
        fig = FigurePlot(series.size)
        fig.add_line_panel("series", series, bands=[(10, 60, COLOR_BAND)])
        svg = fig.render()
        assert COLOR_BAND in svg

    def test_length_mismatch_rejected(self):
        fig = FigurePlot(100)
        with pytest.raises(ParameterError):
            fig.add_line_panel("bad", np.zeros(99))

    def test_long_series_downsampled(self):
        series = np.sin(np.arange(50_000) / 100.0)
        fig = FigurePlot(series.size)
        fig.add_line_panel("long", series)
        svg = fig.render()
        # output stays bounded even for 50k points
        assert len(svg) < 300_000

    def test_stem_panel_skips_bad_stems(self):
        fig = FigurePlot(100)
        fig.add_stem_panel(
            "nn", [(5, 1.0), (500, 2.0), (10, float("inf"))]
        )
        assert len(fig.panels[0].stems) == 1

    def test_save(self, tmp_path):
        fig = FigurePlot(100)
        fig.add_line_panel("s", np.zeros(100))
        path = tmp_path / "fig.svg"
        fig.save(path)
        _parse(path.read_text())

    def test_too_short_series(self):
        with pytest.raises(ParameterError):
            FigurePlot(1)


class TestScatterPlot:
    def test_hit_miss_colors(self):
        svg = scatter_plot(
            [(1.0, 10.0, True), (2.0, 20.0, False)],
            title="fig10", x_label="approx", y_label="size",
        )
        root = _parse(svg)
        assert _count(root, "circle") == 2
        assert "#16a34a" in svg and "#dc2626" in svg

    def test_degenerate_ranges_ok(self):
        svg = scatter_plot([(1.0, 1.0, True)], title="t", x_label="x",
                           y_label="y")
        _parse(svg)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            scatter_plot([], title="t", x_label="x", y_label="y")


class TestHilbertPlot:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_curve_drawn(self, order):
        svg = hilbert_plot(order)
        root = _parse(svg)
        side = 1 << order
        # one dot per visited cell
        assert _count(root, "circle") == side * side
        assert _count(root, "polyline") == 1

    def test_large_order_unlabelled(self):
        svg = hilbert_plot(4, cell=12)
        root = _parse(svg)
        # 16x16 cells: index labels suppressed
        assert _count(root, "text") == 0


class TestTrajectoryPlot:
    def test_highlights(self):
        lats = np.linspace(0, 1, 50)
        lons = np.linspace(0, 1, 50) ** 2
        svg = trajectory_plot(
            lats, lons, highlights=[(10, 20, "#ff0000")], title="trail"
        )
        root = _parse(svg)
        assert _count(root, "polyline") == 2  # base trail + highlight
        assert "#ff0000" in svg

    def test_mismatched_inputs(self):
        with pytest.raises(ParameterError):
            trajectory_plot([0.0, 1.0], [0.0])

    def test_tiny_highlight_skipped(self):
        lats = np.linspace(0, 1, 20)
        svg = trajectory_plot(lats, lats, highlights=[(5, 6, "#ff0000")])
        root = _parse(svg)
        assert _count(root, "polyline") == 1

"""Tests for repro.grammar.postprocess — pruning and periodicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GrammarAnomalyDetector
from repro.datasets import ecg_qtdb_0606_like, repeated_pattern
from repro.exceptions import ParameterError
from repro.grammar.intervals import rule_intervals
from repro.grammar.postprocess import prune_rules, rule_periodicity


@pytest.fixture(scope="module")
def fitted():
    dataset = ecg_qtdb_0606_like()
    detector = GrammarAnomalyDetector(
        dataset.window, dataset.paa_size, dataset.alphabet_size
    )
    result = detector.fit(dataset.series)
    return dataset, result


class TestPruneRules:
    def test_pruned_set_is_smaller(self, fitted):
        _, result = fitted
        kept = prune_rules(result.grammar, result.discretization)
        assert 0 < len(kept) < len(result.grammar.non_start_rules())

    def test_coverage_preserved(self, fitted):
        """The kept rules cover exactly the points the full set covers."""
        dataset, result = fitted
        full = np.zeros(dataset.length, dtype=bool)
        for iv in result.intervals:
            full[iv.start : iv.end] = True

        kept_ids = {k.rule_id for k in prune_rules(result.grammar,
                                                   result.discretization)}
        pruned_cover = np.zeros(dataset.length, dtype=bool)
        for iv in result.intervals:
            if iv.rule_id in kept_ids:
                pruned_cover[iv.start : iv.end] = True
        np.testing.assert_array_equal(pruned_cover, full)

    def test_selection_order_by_contribution(self, fitted):
        _, result = fitted
        kept = prune_rules(result.grammar, result.discretization)
        # the first selected rule contributes the most new points
        assert kept[0].new_points == max(k.new_points for k in kept)
        # every kept rule contributed something
        assert all(k.new_points >= 1 for k in kept)

    def test_min_new_points_filter(self, fitted):
        _, result = fitted
        loose = prune_rules(result.grammar, result.discretization)
        strict = prune_rules(
            result.grammar, result.discretization, min_new_points=50
        )
        assert len(strict) <= len(loose)
        assert all(k.new_points >= 50 for k in strict)

    def test_invalid_parameter(self, fitted):
        _, result = fitted
        with pytest.raises(ParameterError):
            prune_rules(result.grammar, result.discretization, min_new_points=0)


class TestRulePeriodicity:
    def test_periodic_pattern_detected(self):
        """On exactly repeated patterns, top rules are near-perfectly
        periodic (CV ~ 0)."""
        dataset = repeated_pattern(repeats=25, pattern_length=120, seed=1)
        detector = GrammarAnomalyDetector(
            dataset.window, dataset.paa_size, dataset.alphabet_size
        )
        result = detector.fit(dataset.series)
        stats = rule_periodicity(result.grammar, result.discretization)
        assert stats
        most_regular = stats[0]
        assert most_regular.period_cv < 0.1
        assert most_regular.is_periodic
        # the period is a multiple of the pattern length
        ratio = most_regular.mean_period / 120.0
        assert abs(ratio - round(ratio)) < 0.15

    def test_sorted_by_cv(self, fitted):
        _, result = fitted
        stats = rule_periodicity(result.grammar, result.discretization)
        cvs = [s.period_cv for s in stats]
        assert cvs == sorted(cvs)

    def test_min_occurrences_respected(self, fitted):
        _, result = fitted
        stats = rule_periodicity(
            result.grammar, result.discretization, min_occurrences=5
        )
        assert all(s.usage >= 5 for s in stats)

    def test_invalid_parameter(self, fitted):
        _, result = fitted
        with pytest.raises(ParameterError):
            rule_periodicity(result.grammar, result.discretization,
                             min_occurrences=1)

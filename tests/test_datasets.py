"""Tests for repro.datasets — generators, ground truth, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    commute_trail,
    dutch_power_demand_like,
    ecg_qtdb_0606_like,
    ecg_record_like,
    get_row,
    random_walk,
    repeated_pattern,
    respiration_like,
    sine_with_anomaly,
    synthetic_ecg,
    table1_rows,
    tek_like,
    video_gun_like,
)
from repro.exceptions import DatasetError


class TestDatasetContainer:
    def test_anomaly_bounds_validated(self):
        with pytest.raises(DatasetError):
            Dataset(name="bad", series=np.zeros(10), anomalies=[(5, 15)])

    def test_rejects_2d(self):
        with pytest.raises(DatasetError):
            Dataset(name="bad", series=np.zeros((3, 3)))

    def test_contains_hit(self):
        ds = Dataset(name="x", series=np.zeros(100), anomalies=[(40, 60)])
        assert ds.contains_hit(45, 55)
        assert ds.contains_hit(30, 50)  # 10/20 of the shorter = 0.5
        assert not ds.contains_hit(0, 20)
        assert not ds.contains_hit(58, 98, min_overlap=0.5)


class TestGeneratorsDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: sine_with_anomaly(seed=1),
            lambda: synthetic_ecg(seed=1),
            lambda: dutch_power_demand_like(weeks=3, holiday_weeks=((1, 2),), seed=1),
            lambda: video_gun_like(num_cycles=5, anomaly_cycles=(2,), seed=1),
            lambda: tek_like("TEK14", num_cycles=9, seed=1),
            lambda: respiration_like(length=2000, seed=1),
            lambda: repeated_pattern(seed=1),
        ],
    )
    def test_same_seed_same_series(self, factory):
        a, b = factory(), factory()
        np.testing.assert_array_equal(a.series, b.series)
        assert a.anomalies == b.anomalies

    def test_different_seed_different_series(self):
        a = sine_with_anomaly(seed=1)
        b = sine_with_anomaly(seed=2)
        assert not np.array_equal(a.series, b.series)


class TestSineWithAnomaly:
    @pytest.mark.parametrize("kind", ["flip", "bump", "flat", "speedup"])
    def test_kinds(self, kind):
        ds = sine_with_anomaly(anomaly_kind=kind)
        assert ds.anomalies == [(2000, 2120)]

    def test_unknown_kind(self):
        with pytest.raises(DatasetError):
            sine_with_anomaly(anomaly_kind="wiggle")

    def test_out_of_bounds_anomaly(self):
        with pytest.raises(DatasetError):
            sine_with_anomaly(length=100, anomaly_start=90, anomaly_length=20)


class TestEcg:
    def test_anomaly_intervals_cover_pvc_beats(self):
        ds = synthetic_ecg(num_beats=10, anomaly_beats=(3, 7))
        assert len(ds.anomalies) == 2
        assert ds.anomalies[0][0] < ds.anomalies[1][0]

    def test_qtdb_0606_scale(self):
        ds = ecg_qtdb_0606_like()
        assert 2000 <= ds.length <= 2600
        assert ds.window == 120

    def test_record_like_anomaly_count(self):
        ds = ecg_record_like("300", length=6000, num_anomalies=3, seed=300)
        assert len(ds.anomalies) == 3

    def test_invalid_anomaly_beat(self):
        with pytest.raises(DatasetError):
            synthetic_ecg(num_beats=5, anomaly_beats=(9,))

    def test_too_many_anomalies(self):
        with pytest.raises(DatasetError):
            ecg_record_like("x", length=1000, num_anomalies=50)


class TestPower:
    def test_week_structure(self):
        ds = dutch_power_demand_like(weeks=4, holiday_weeks=((2, 1),))
        assert ds.length == 4 * 7 * 96
        assert len(ds.anomalies) == 1
        # anomaly lies on the Tuesday of week 2
        start, end = ds.anomalies[0]
        assert start == (2 * 7 + 1) * 96
        assert end - start == 96

    def test_holiday_day_is_weekend_shaped(self):
        ds = dutch_power_demand_like(weeks=4, holiday_weeks=((2, 1),), seed=5)
        start, end = ds.anomalies[0]
        holiday = ds.series[start:end]
        weekday = ds.series[(2 * 7 + 0) * 96 : (2 * 7 + 1) * 96]
        assert holiday.mean() < weekday.mean()  # low flat demand

    def test_invalid_holiday(self):
        with pytest.raises(DatasetError):
            dutch_power_demand_like(weeks=4, holiday_weeks=((9, 0),))
        with pytest.raises(DatasetError):
            dutch_power_demand_like(weeks=4, holiday_weeks=((1, 6),))


class TestVideoTelemetryRespiration:
    def test_video_anomaly_inside_cycle(self):
        ds = video_gun_like(num_cycles=8, anomaly_cycles=(4,))
        (start, end), = ds.anomalies
        assert 0 < start < end <= ds.length

    def test_tek_variants_differ(self):
        a = tek_like("TEK14").series
        b = tek_like("TEK16").series
        assert not np.array_equal(a, b)

    def test_tek_unknown_variant(self):
        with pytest.raises(DatasetError):
            tek_like("TEK99")

    def test_tek_num_cycles_too_small(self):
        with pytest.raises(DatasetError):
            tek_like("TEK16", num_cycles=5)

    def test_respiration_lengths(self):
        ds = respiration_like(length=4000)
        assert ds.length == 4000
        assert len(ds.anomalies) == 1


class TestTrajectoryDataset:
    def test_intervals_recorded(self):
        trail = commute_trail(num_trips=6, detour_trip=3, gps_loss_trip=1)
        assert trail.detour_interval[0] < trail.detour_interval[1]
        assert trail.gps_loss_interval[0] < trail.gps_loss_interval[1]
        assert trail.dataset.length == len(trail.trail)

    def test_detour_equals_gps_trip_rejected(self):
        with pytest.raises(DatasetError):
            commute_trail(num_trips=6, detour_trip=2, gps_loss_trip=2)

    def test_detour_trip_longer(self):
        trail = commute_trail(num_trips=6, detour_trip=3, gps_loss_trip=1,
                              points_per_leg=50)
        # 5 normal trips x 4 legs + 1 detour trip x 6 legs
        assert trail.dataset.length == (5 * 4 + 6) * 50


class TestRandomWalkAndPattern:
    def test_random_walk_no_ground_truth(self):
        walk = random_walk(length=500)
        assert walk.size == 500

    def test_repeated_pattern_anomaly(self):
        ds = repeated_pattern(repeats=10, anomaly_at=4)
        (start, end), = ds.anomalies
        assert start == 4 * 120


class TestRegistry:
    def test_fourteen_rows(self):
        assert len(table1_rows()) == 14

    def test_keys_unique(self):
        keys = [r.key for r in table1_rows()]
        assert len(set(keys)) == 14

    def test_get_row(self):
        row = get_row("ecg_qtdb_0606")
        assert row.window == 120
        assert row.paper.length == 2300

    def test_get_row_unknown(self):
        with pytest.raises(DatasetError):
            get_row("nope")

    def test_paper_numbers_consistent(self):
        """RRA always beats HOTSAX in the published numbers."""
        for row in table1_rows():
            assert row.paper.rra_calls < row.paper.hotsax_calls
            assert row.paper.hotsax_calls < row.paper.brute_force_calls

    @pytest.mark.parametrize("row", table1_rows(), ids=lambda r: r.key)
    def test_factories_produce_usable_datasets(self, row):
        ds = row.factory()
        assert ds.length >= 2 * row.window
        assert ds.anomalies, f"{row.key} has no ground truth"
        assert np.isfinite(ds.series).all()
